package sca

import (
	"math"
	"testing"
)

// burstTrace builds a trace of nb bursts of the given width and height,
// separated by gap quiet samples on a zero baseline, starting at
// sample gap.
func burstTrace(nb, width, gap int, height float32) []float32 {
	t := make([]float32, gap+nb*(width+gap))
	for b := 0; b < nb; b++ {
		start := gap + b*(width+gap)
		for i := 0; i < width; i++ {
			t[start+i] = height
		}
	}
	return t
}

func TestSmooth(t *testing.T) {
	tr := []float32{0, 0, 6, 0, 0}
	sm := Smooth(tr, 3)
	want := []float64{0, 2, 2, 2, 0}
	for i := range want {
		if math.Abs(sm[i]-want[i]) > 1e-12 {
			t.Errorf("Smooth[%d] = %g, want %g", i, sm[i], want[i])
		}
	}
	// Window 1 (and below) is the identity.
	for _, w := range []int{1, 0, -3} {
		sm := Smooth(tr, w)
		for i := range tr {
			if sm[i] != float64(tr[i]) {
				t.Errorf("Smooth(w=%d)[%d] = %g, want identity %g", w, i, sm[i], tr[i])
			}
		}
	}
	// Ends average only the in-range window portion.
	if sm := Smooth([]float32{4, 0}, 3); sm[0] != 2 {
		t.Errorf("edge smooth = %g, want 2", sm[0])
	}
}

func TestPeaksFindsBursts(t *testing.T) {
	const nb, width, gap = 7, 10, 20
	tr := burstTrace(nb, width, gap, 5)
	peaks := Peaks(tr, 1, 0.5)
	if len(peaks) != nb {
		t.Fatalf("found %d peaks, want %d", len(peaks), nb)
	}
	for b, p := range peaks {
		start := gap + b*(width+gap)
		if p.Start != start || p.End != start+width {
			t.Errorf("peak %d spans [%d,%d), want [%d,%d)", b, p.Start, p.End, start, start+width)
		}
		if p.Max != 5 {
			t.Errorf("peak %d max = %g, want 5", b, p.Max)
		}
	}
	if Peaks(nil, 3, 0.5) != nil {
		t.Error("empty trace produced peaks")
	}
	// A burst running to the end of the trace still closes.
	open := append(burstTrace(1, 4, 8, 3), 3, 3)
	last := Peaks(open, 1, 0.5)
	if n := len(last); n == 0 || last[n-1].End != len(open) {
		t.Errorf("trailing burst not closed: %+v", last)
	}
}

func TestMergeClose(t *testing.T) {
	peaks := []Peak{
		{Start: 10, End: 20, Max: 3, MaxAt: 12},
		{Start: 24, End: 30, Max: 5, MaxAt: 27}, // gap 4 → merged
		{Start: 60, End: 70, Max: 4, MaxAt: 65}, // gap 30 → separate
	}
	got := MergeClose(peaks, 10)
	if len(got) != 2 {
		t.Fatalf("merged to %d peaks, want 2", len(got))
	}
	if got[0].Start != 10 || got[0].End != 30 {
		t.Errorf("merged span [%d,%d), want [10,30)", got[0].Start, got[0].End)
	}
	if got[0].Max != 5 || got[0].MaxAt != 27 {
		t.Errorf("merged max %g@%d, want 5@27", got[0].Max, got[0].MaxAt)
	}
	if got[1] != peaks[2] {
		t.Errorf("distant peak altered: %+v", got[1])
	}
	if MergeClose(nil, 10) != nil {
		t.Error("nil peaks merged to something")
	}
}

func TestAlign(t *testing.T) {
	base := burstTrace(3, 6, 12, 4)
	// Identical traces align at lag 0 with perfect correlation.
	lag, corr := Align(base, base, 8)
	if lag != 0 || corr < 0.999 {
		t.Errorf("self-align = lag %d corr %g, want 0, ~1", lag, corr)
	}
	// A delayed copy aligns at the delay.
	shifted := append(make([]float32, 5), base...)
	shifted = shifted[:len(base)]
	lag, corr = Align(base, shifted, 8)
	if lag != 5 || corr < 0.99 {
		t.Errorf("shift-align = lag %d corr %g, want 5, ~1", lag, corr)
	}
	// An advanced copy aligns negative.
	adv := append(append([]float32(nil), base[5:]...), make([]float32, 5)...)
	lag, _ = Align(base, adv, 8)
	if lag != -5 {
		t.Errorf("advance-align = lag %d, want -5", lag)
	}
}
