package sca

import (
	"context"
	"fmt"
	"math"
	"math/bits"
	"testing"

	"repro/internal/aes"
	"repro/internal/xrand"
)

// synthTraces builds n synthetic traces with the victim's leak shape:
// each key byte b leaks HW(SBox(pt[b]^key[b])) at sample 8+4*b, on a
// flat baseline with deterministic uniform noise of the given
// amplitude. Returns traces, plaintexts, and the leak positions.
func synthTraces(n, samples int, key [16]byte, noise float64, seed uint64) ([][]float32, [][]byte, [16]int) {
	rng := xrand.New(seed)
	traces := make([][]float32, n)
	pts := make([][]byte, n)
	var leakAt [16]int
	for b := 0; b < 16; b++ {
		leakAt[b] = 8 + 4*b
	}
	for i := 0; i < n; i++ {
		pt := make([]byte, 16)
		for b := range pt {
			pt[b] = byte(rng.Uint64())
		}
		t := make([]float32, samples)
		for s := range t {
			t[s] = float32(0.62 + noise*(rng.Float64()-0.5))
		}
		for b := 0; b < 16; b++ {
			hw := bits.OnesCount8(aes.SBox(pt[b] ^ key[b]))
			t[leakAt[b]] += float32(hw)
		}
		traces[i], pts[i] = t, pt
	}
	return traces, pts, leakAt
}

var testKey = [16]byte{
	0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
	0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c,
}

// TestCPARecoversSyntheticKey: with the hypothesis model and the leak
// model in exact agreement, a handful of traces recover every byte at
// rank 0, each peaking at its known leak sample.
func TestCPARecoversSyntheticKey(t *testing.T) {
	traces, pts, leakAt := synthTraces(40, 96, testKey, 1.0, 0xABCD)
	res, err := Attack(context.Background(), traces, pts, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Key != testKey {
		t.Fatalf("recovered %x, want %x", res.Key, testKey)
	}
	for b := 0; b < 16; b++ {
		br := &res.Bytes[b]
		if got := br.Rank(testKey[b]); got != 0 {
			t.Errorf("byte %d: true byte at rank %d", b, got)
		}
		if br.PeakAt != leakAt[b] {
			t.Errorf("byte %d: peak at sample %d, want leak sample %d", b, br.PeakAt, leakAt[b])
		}
		if br.Margin <= 0 {
			t.Errorf("byte %d: non-positive margin %g", b, br.Margin)
		}
	}
}

// TestPearsonAccMatchesTwoPass: the streaming accumulator's closed-form
// r equals a textbook two-pass Pearson computation.
func TestPearsonAccMatchesTwoPass(t *testing.T) {
	const n, w = 37, 5
	rng := xrand.New(0x9E3779B9)
	traces := make([][]float32, n)
	ptb := make([]byte, n)
	for i := range traces {
		tr := make([]float32, w)
		for s := range tr {
			tr[s] = float32(rng.Float64() * 10)
		}
		traces[i] = tr
		ptb[i] = byte(rng.Uint64())
	}
	acc := NewPearsonAcc(w)
	for i, tr := range traces {
		acc.Add(tr, ptb[i])
	}
	twoPass := func(g, s int) float64 {
		var mx, mh float64
		for i := range traces {
			mx += float64(traces[i][s])
			mh += hwSBox[ptb[i]^byte(g)]
		}
		mx /= n
		mh /= n
		var num, dx, dh float64
		for i := range traces {
			x := float64(traces[i][s]) - mx
			h := hwSBox[ptb[i]^byte(g)] - mh
			num += x * h
			dx += x * x
			dh += h * h
		}
		if dx*dh == 0 {
			return 0
		}
		return num / math.Sqrt(dx*dh)
	}
	for g := 0; g < 256; g += 17 {
		for s := 0; s < w; s++ {
			got, want := acc.Corr(g, s), twoPass(g, s)
			if math.Abs(got-want) > 1e-9 {
				t.Fatalf("Corr(%d,%d) = %.12f, two-pass %.12f", g, s, got, want)
			}
		}
	}
}

// TestCorrZeroVariance: a constant trace or constant hypothesis yields
// r = 0, not NaN.
func TestCorrZeroVariance(t *testing.T) {
	acc := NewPearsonAcc(1)
	for i := 0; i < 8; i++ {
		acc.Add([]float32{3.5}, byte(i))
	}
	for g := 0; g < 256; g++ {
		if r := acc.Corr(g, 0); r != 0 || math.IsNaN(r) {
			t.Fatalf("constant trace: Corr(%d,0) = %v, want 0", g, r)
		}
	}
}

// TestAttackValidates pins the input validation.
func TestAttackValidates(t *testing.T) {
	good := [][]float32{{1, 2}, {3, 4}}
	pts := [][]byte{make([]byte, 16), make([]byte, 16)}
	ctx := context.Background()
	if _, err := Attack(ctx, nil, nil, 0, 1); err == nil {
		t.Error("empty trace set accepted")
	}
	if _, err := Attack(ctx, good, pts[:1], 0, 1); err == nil {
		t.Error("plaintext/trace count mismatch accepted")
	}
	if _, err := Attack(ctx, [][]float32{{1, 2}, {3}}, pts, 0, 1); err == nil {
		t.Error("ragged traces accepted")
	}
	if _, err := Attack(ctx, good, [][]byte{make([]byte, 16), make([]byte, 3)}, 0, 1); err == nil {
		t.Error("short plaintext accepted")
	}
}

// TestAttackDeterministicAcrossWorkers: the fan-out leaves no
// scheduling fingerprint on the result.
func TestAttackDeterministicAcrossWorkers(t *testing.T) {
	traces, pts, _ := synthTraces(16, 80, testKey, 2.0, 0xFEED)
	a, err := Attack(context.Background(), traces, pts, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Attack(context.Background(), traces, pts, 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprintf("%+v", a) != fmt.Sprintf("%+v", b) {
		t.Fatal("Attack result depends on worker count")
	}
}

// BenchmarkCPACorrelate measures the full 16-byte CPA over a realistic
// window: 64 traces × 256 samples, all guesses.
func BenchmarkCPACorrelate(b *testing.B) {
	traces, pts, _ := synthTraces(64, 256, testKey, 1.0, 0xBEEF)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Attack(ctx, traces, pts, 0, 0); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N*len(traces))/b.Elapsed().Seconds(), "traces/s")
}
