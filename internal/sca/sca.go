// Package sca is the analysis half of the side-channel toolkit: given
// power traces captured by internal/trace, it recovers secrets. Two
// classic techniques are implemented against the repo's AES victim:
//
//   - SPA (spa.go): align traces and match activity peaks to find the
//     round structure of the AES schedule — where in time the leak is.
//   - CPA (this file): correlate per-key-byte Hamming-weight hypotheses
//     against N traces and read the key out of the correlation peaks.
//
// The CPA accumulator is streaming and one-pass: each trace updates
// running sums (Σx, Σx², Σh, Σh², Σhx) from which Pearson's r for
// every (guess, sample) pair is closed-form at the end — no trace
// matrix is retained, so trace count is bounded by capture time, not
// memory. Accumulation order is fixed (trace index order, guesses in
// ascending order), which keeps the float64 sums — and therefore every
// reported correlation — bit-reproducible across runs and GOMAXPROCS
// settings. The per-key-byte searches are independent, so Attack fans
// them out over runner.MapWithResource and reassembles in byte order.
package sca

import (
	"context"
	"fmt"
	"math"
	"math/bits"

	"repro/internal/aes"
	"repro/internal/runner"
)

// hwSBox[b] = HW(SBox(b)): the hypothesis table. h[guess] for a trace
// with plaintext byte p is hwSBox[p^guess] — the predicted Hamming
// weight of the round-0 SubBytes writeback the victim leaks.
var hwSBox [256]float64

func init() {
	for b := 0; b < 256; b++ {
		hwSBox[b] = float64(bits.OnesCount8(aes.SBox(byte(b))))
	}
}

// PearsonAcc is the streaming one-pass Pearson accumulator for one key
// byte: 256 guess hypotheses against a window of trace samples.
type PearsonAcc struct {
	// W is the correlation window in samples.
	W int
	// n is the trace count; sx/sxx are per-sample trace sums; sh/shh
	// are per-guess hypothesis sums; shx is the [256][W] cross-sum,
	// flattened guess-major.
	n        float64
	sx, sxx  []float64
	sh, shh  [256]float64
	shx      []float64
}

// NewPearsonAcc builds an accumulator over a window of w samples.
func NewPearsonAcc(w int) *PearsonAcc {
	return &PearsonAcc{
		W:   w,
		sx:  make([]float64, w),
		sxx: make([]float64, w),
		shx: make([]float64, 256*w),
	}
}

// Add folds one trace into the sums. pt is the trace's known plaintext
// byte for the key byte under attack; t must hold at least W samples.
func (a *PearsonAcc) Add(t []float32, pt byte) {
	a.n++
	for s := 0; s < a.W; s++ {
		x := float64(t[s])
		a.sx[s] += x
		a.sxx[s] += x * x
	}
	for g := 0; g < 256; g++ {
		h := hwSBox[pt^byte(g)]
		a.sh[g] += h
		a.shh[g] += h * h
		if h == 0 {
			continue // a zero hypothesis contributes exactly zero
		}
		row := a.shx[g*a.W : (g+1)*a.W]
		for s := 0; s < a.W; s++ {
			row[s] += h * float64(t[s])
		}
	}
}

// Corr returns Pearson's r between guess g's hypothesis and sample s
// across everything added so far (0 when either side has no variance).
func (a *PearsonAcc) Corr(g int, s int) float64 {
	num := a.n*a.shx[g*a.W+s] - a.sh[g]*a.sx[s]
	dh := a.n*a.shh[g] - a.sh[g]*a.sh[g]
	dx := a.n*a.sxx[s] - a.sx[s]*a.sx[s]
	den := dh * dx
	if den <= 0 {
		return 0
	}
	return num / math.Sqrt(den)
}

// ByteResult is the CPA outcome for one key byte.
type ByteResult struct {
	// Best is the winning guess: the byte whose peak |r| is highest.
	Best byte
	// PeakCorr is the winner's peak |r|; PeakAt its sample index.
	PeakCorr float64
	PeakAt   int
	// Margin is the winner's peak minus the runner-up's peak — the
	// confidence of the recovery.
	Margin float64
	// Scores holds every guess's peak |r|, for rank computation
	// against a known key.
	Scores [256]float64
}

// Rank returns the rank of byte b among the guesses: 0 when b won, k
// when k guesses scored strictly higher.
func (r *ByteResult) Rank(b byte) int {
	rank := 0
	for g := 0; g < 256; g++ {
		if r.Scores[g] > r.Scores[b] {
			rank++
		}
	}
	return rank
}

// Result is a full 16-byte CPA key recovery.
type Result struct {
	// Key is the recovered key (each byte's winning guess).
	Key [16]byte
	// Bytes holds the per-byte detail.
	Bytes [16]ByteResult
}

// attackByte runs the full guess-space correlation for key byte b.
func attackByte(traces [][]float32, pts [][]byte, w int, b int) ByteResult {
	acc := NewPearsonAcc(w)
	for i, t := range traces {
		acc.Add(t, pts[i][b])
	}
	var res ByteResult
	best, second := -1.0, -1.0
	for g := 0; g < 256; g++ {
		peak, peakAt := 0.0, 0
		for s := 0; s < w; s++ {
			if r := math.Abs(acc.Corr(g, s)); r > peak {
				peak, peakAt = r, s
			}
		}
		res.Scores[g] = peak
		if peak > best {
			second = best
			best = peak
			res.Best, res.PeakCorr, res.PeakAt = byte(g), peak, peakAt
		} else if peak > second {
			second = peak
		}
	}
	res.Margin = best - second
	return res
}

// Attack recovers a 16-byte AES key by CPA over the first w samples of
// each trace (w is clamped to the trace length). pts[i] must hold
// trace i's 16 plaintext bytes. The 16 byte-searches run in parallel
// over the runner; the result is deterministic — each byte's sums
// accumulate in trace order regardless of worker count.
func Attack(ctx context.Context, traces [][]float32, pts [][]byte, w int, workers int) (*Result, error) {
	if len(traces) == 0 {
		return nil, fmt.Errorf("sca: no traces")
	}
	if len(pts) != len(traces) {
		return nil, fmt.Errorf("sca: %d plaintexts for %d traces", len(pts), len(traces))
	}
	for i, t := range traces {
		if len(t) < 1 {
			return nil, fmt.Errorf("sca: trace %d is empty", i)
		}
		if len(t) < len(traces[0]) {
			return nil, fmt.Errorf("sca: ragged traces (%d: %d samples, 0: %d)", i, len(t), len(traces[0]))
		}
		if len(pts[i]) != 16 {
			return nil, fmt.Errorf("sca: plaintext %d has %d bytes, want 16", i, len(pts[i]))
		}
	}
	if w <= 0 || w > len(traces[0]) {
		w = len(traces[0])
	}
	outs, err := runner.MapWithResource(ctx, 16, workers,
		func() (struct{}, error) { return struct{}{}, nil },
		func(_ struct{}, b int) (ByteResult, error) {
			return attackByte(traces, pts, w, b), nil
		})
	if err != nil {
		return nil, err
	}
	res := &Result{}
	for b, out := range outs {
		res.Bytes[b] = out
		res.Key[b] = out.Best
	}
	return res, nil
}
