package sca

import "math"

// SPA: simple power analysis against the victim's round structure. The
// AES victim alternates high-activity rounds (S-box loads, writebacks,
// bus traffic) with deliberate quiet gaps, so a smoothed trace shows
// one activity burst per round. Peaks finds those bursts; Align finds
// the sample lag between two captures of the same code, so traces from
// differently-triggered captures can be brought onto one time base
// before averaging or CPA.

// Peak is one contiguous above-threshold burst in a smoothed trace.
type Peak struct {
	// Start/End bound the burst: samples [Start, End).
	Start, End int
	// Max is the burst's highest smoothed value, at sample MaxAt.
	Max   float64
	MaxAt int
}

// Smooth returns the centered moving average of t with window w (odd
// widths center exactly; even widths lean one sample left). Ends are
// averaged over the in-range portion of the window.
func Smooth(t []float32, w int) []float64 {
	if w < 1 {
		w = 1
	}
	out := make([]float64, len(t))
	for i := range t {
		lo := i - w/2
		hi := lo + w
		if lo < 0 {
			lo = 0
		}
		if hi > len(t) {
			hi = len(t)
		}
		sum := 0.0
		for j := lo; j < hi; j++ {
			sum += float64(t[j])
		}
		out[i] = sum / float64(hi-lo)
	}
	return out
}

// Peaks smooths t with window w and thresholds at min + frac*(max-min)
// of the smoothed trace, returning the contiguous above-threshold
// bursts in time order. frac 0.5 splits the victim's active rounds
// from its quiet gaps with a wide margin.
func Peaks(t []float32, w int, frac float64) []Peak {
	if len(t) == 0 {
		return nil
	}
	sm := Smooth(t, w)
	lo, hi := sm[0], sm[0]
	for _, v := range sm {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	thr := lo + frac*(hi-lo)
	var peaks []Peak
	open := false
	for i, v := range sm {
		switch {
		case v >= thr && !open:
			peaks = append(peaks, Peak{Start: i, Max: v, MaxAt: i})
			open = true
		case v >= thr:
			p := &peaks[len(peaks)-1]
			if v > p.Max {
				p.Max, p.MaxAt = v, i
			}
		case open:
			peaks[len(peaks)-1].End = i
			open = false
		}
	}
	if open {
		peaks[len(peaks)-1].End = len(sm)
	}
	return peaks
}

// MergeClose coalesces peaks separated by fewer than minGap samples
// into one. Thresholding a real trace splits a burst wherever activity
// momentarily dips; merging by gap width recovers the macro structure
// when (as with the AES victim's inter-round NOP gaps) true quiet
// periods are much wider than intra-burst dips.
func MergeClose(peaks []Peak, minGap int) []Peak {
	if len(peaks) == 0 {
		return nil
	}
	out := []Peak{peaks[0]}
	for _, p := range peaks[1:] {
		last := &out[len(out)-1]
		if p.Start-last.End < minGap {
			last.End = p.End
			if p.Max > last.Max {
				last.Max, last.MaxAt = p.Max, p.MaxAt
			}
			continue
		}
		out = append(out, p)
	}
	return out
}

// Align returns the lag of t against ref that maximizes Pearson
// correlation over their overlap, searching lags in [-maxLag, maxLag].
// A positive lag means t is delayed: t[i+lag] lines up with ref[i].
// Ties break toward the smallest |lag| (then the negative one), so two
// identical traces always align at lag 0.
func Align(ref, t []float32, maxLag int) (lag int, corr float64) {
	if maxLag < 0 {
		maxLag = 0
	}
	bestLag, bestCorr := 0, math.Inf(-1)
	for _, l := range lagOrder(maxLag) {
		c := lagCorr(ref, t, l)
		if c > bestCorr {
			bestLag, bestCorr = l, c
		}
	}
	return bestLag, bestCorr
}

// lagOrder enumerates 0, -1, 1, -2, 2, … so the first maximum found is
// the smallest-|lag| one.
func lagOrder(maxLag int) []int {
	out := make([]int, 0, 2*maxLag+1)
	out = append(out, 0)
	for l := 1; l <= maxLag; l++ {
		out = append(out, -l, l)
	}
	return out
}

// lagCorr computes Pearson correlation between ref[i] and t[i+lag]
// over their overlapping range (-inf when the overlap is degenerate).
func lagCorr(ref, t []float32, lag int) float64 {
	lo := 0
	if -lag > lo {
		lo = -lag
	}
	hi := len(ref)
	if len(t)-lag < hi {
		hi = len(t) - lag
	}
	n := hi - lo
	if n < 2 {
		return math.Inf(-1)
	}
	var sx, sy, sxx, syy, sxy float64
	for i := lo; i < hi; i++ {
		x := float64(ref[i])
		y := float64(t[i+lag])
		sx += x
		sy += y
		sxx += x * x
		syy += y * y
		sxy += x * y
	}
	nf := float64(n)
	den := (nf*sxx - sx*sx) * (nf*syy - sy*sy)
	if den <= 0 {
		return math.Inf(-1)
	}
	return (nf*sxy - sx*sy) / math.Sqrt(den)
}
