// Package isa implements VBA64, a compact ARM-like 64-bit instruction set
// with a fixed 32-bit encoding, together with an assembler, a
// disassembler, and an interpreting CPU model.
//
// The Volt Boot paper's experiments run small aarch64 bare-metal programs
// (NOP fills, pattern stores, cache-dump payloads using RAMINDEX and
// barriers). Reproducing those experiments faithfully requires *actual
// machine code occupying simulated i-cache lines*, so that "compare the
// extracted cache image against ground-truth machine code" is a real
// byte-for-byte comparison, not a simulation shortcut. VBA64 provides
// exactly the slice of the A64 architecture the paper's payloads use:
//
//   - 31 general-purpose 64-bit registers X0–X30 plus XZR,
//   - 32 128-bit vector registers V0–V31 (the §7.2 target),
//   - loads/stores of 8/32/64/128 bits,
//   - compare/branch control flow,
//   - DSB/ISB barriers, DC ZVA, DC CIVAC, IC IALLU cache maintenance,
//   - a RAMINDEX-style system-register interface into cache RAMs,
//     restricted to EL3 like the CP15 path described in §5.2.4,
//   - exception levels EL0–EL3.
//
// The binary encoding is our own (documented below) rather than real A64:
// re-implementing the genuine A64 encoder adds nothing to the attack
// physics being reproduced. DESIGN.md records the substitution.
package isa

import "fmt"

// Op is the 6-bit major opcode stored in instruction bits [31:26].
type Op uint32

// Major opcodes. Gaps are reserved.
const (
	OpInvalid Op = 0x00
	// F1: hw[25:24] imm16[23:8] rd[4:0]
	OpMOVZ Op = 0x01
	OpMOVK Op = 0x02
	OpMOVN Op = 0x03
	// F2: rm[25:21] rn[20:16] rd[4:0]
	OpADD  Op = 0x04
	OpSUB  Op = 0x05
	OpAND  Op = 0x06
	OpORR  Op = 0x07
	OpEOR  Op = 0x08
	OpLSLV Op = 0x09
	OpLSRV Op = 0x0A
	OpMUL  Op = 0x0B
	OpSUBS Op = 0x0C
	OpADDS Op = 0x0D
	// F3: imm12[25:14] rn[9:5] rd[4:0]
	OpADDI  Op = 0x10
	OpSUBI  Op = 0x11
	OpSUBSI Op = 0x12
	// F4: imm12[25:14] (scaled by access size) rn[9:5] rt[4:0]
	OpLDR  Op = 0x14
	OpSTR  Op = 0x15
	OpLDRW Op = 0x16
	OpSTRW Op = 0x17
	OpLDRB Op = 0x18
	OpSTRB Op = 0x19
	// F5: simm26[25:0] word offset
	OpB  Op = 0x20
	OpBL Op = 0x21
	// F6: cond[25:22] simm18[21:4]
	OpBCond Op = 0x22
	// F6b: simm21[25:5] rt[4:0]
	OpCBZ  Op = 0x23
	OpCBNZ Op = 0x24
	// system / misc
	OpRET     Op = 0x28 // rn[9:5]
	OpNOP     Op = 0x29
	OpHLT     Op = 0x2A // imm16[23:8]
	OpDSB     Op = 0x2B
	OpISB     Op = 0x2C
	OpMRS     Op = 0x2D // sysreg[20:5] rd[4:0]
	OpMSR     Op = 0x2E // sysreg[20:5] rt[4:0]
	OpDCZVA   Op = 0x2F // rt[4:0] = virtual address
	OpDCCIVAC Op = 0x30 // rt[4:0]
	OpICIALLU Op = 0x31
	// vector
	OpVMOVI Op = 0x38 // imm8[23:16] vd[4:0], byte replicated ×16
	OpVLDR  Op = 0x39 // F4 with 16-byte scaling, vt[4:0]
	OpVSTR  Op = 0x3A
	OpVEOR  Op = 0x3B // F2 on vector registers
	OpUMOV  Op = 0x3C // idx[10] vn[9:5] rd[4:0]: Xd = Vn.D[idx]
	OpINS   Op = 0x3D // idx[10] rn[9:5] vd[4:0]: Vd.D[idx] = Xn
)

// Cond is a 4-bit branch condition for OpBCond.
type Cond uint32

// Branch conditions. Signed comparisons use N⊕V-style semantics computed
// by SUBS/ADDS; unsigned use the carry flag.
const (
	EQ Cond = 0 // Z
	NE Cond = 1 // !Z
	LT Cond = 2 // N != V (signed <)
	GE Cond = 3 // N == V (signed >=)
	LO Cond = 4 // !C (unsigned <)
	HS Cond = 5 // C  (unsigned >=)
	GT Cond = 6 // !Z && N==V
	LE Cond = 7 // Z || N!=V
)

var condNames = map[Cond]string{EQ: "EQ", NE: "NE", LT: "LT", GE: "GE", LO: "LO", HS: "HS", GT: "GT", LE: "LE"}

func (c Cond) String() string {
	if s, ok := condNames[c]; ok {
		return s
	}
	return fmt.Sprintf("cond%d", uint32(c))
}

// XZR is the zero-register index: reads as zero, writes are discarded.
const XZR = 31

// System register identifiers for MRS/MSR.
const (
	SysCurrentEL uint32 = 0x000 // RO: current exception level
	SysCoreID    uint32 = 0x010 // RO: core number (MPIDR-style)
	SysCNT       uint32 = 0x020 // RO: instruction counter
	SysRAMINDEX  uint32 = 0x100 // WO at EL3: triggers a cache-RAM read
	SysRAMDATA0  uint32 = 0x101 // RO: low 64 bits of the last RAMINDEX read
	SysRAMSTATUS uint32 = 0x102 // RO: 0 = ok, 1 = fault (EL/TZ denied)
	SysSCRNS     uint32 = 0x200 // RW at EL3: non-secure state bit
)

var sysregNames = map[uint32]string{
	SysCurrentEL: "CURRENTEL",
	SysCoreID:    "COREID",
	SysCNT:       "CNT",
	SysRAMINDEX:  "RAMINDEX",
	SysRAMDATA0:  "RAMDATA0",
	SysRAMSTATUS: "RAMSTATUS",
	SysSCRNS:     "SCR_NS",
}

// SysRegName returns the assembler name of a system register id.
//voltvet:hotpath
func SysRegName(id uint32) string {
	if s, ok := sysregNames[id]; ok {
		return s
	}
	return fmt.Sprintf("S%#x", id)
}

// SysRegByName resolves an assembler system-register name.
func SysRegByName(name string) (uint32, bool) {
	for id, n := range sysregNames {
		if n == name {
			return id, true
		}
	}
	return 0, false
}

// RAMINDEX request encoding written via MSR RAMINDEX, Xt — our stand-in
// for the Cortex-A72 SYS #0,c15,c4,#0 operation (§6.1):
//
//	bits [63:56] RAM ID (see RAMID* constants)
//	bits [47:32] way
//	bits [31:0]  64-bit-word index within the way (set·wordsPerLine + word)
const (
	RAMIndexIDShift    = 56
	RAMIndexWayShift   = 32
	RAMIndexWayMask    = 0xFFFF
	RAMIndexIndexMask  = 0xFFFFFFFF
	RAMIndexIndexShift = 0
)

// RAM IDs readable through RAMINDEX, mirroring the Cortex-A72 TRM's
// internal-memory list at the granularity the paper uses.
const (
	RAMIDL1ITag  uint64 = 0x00
	RAMIDL1IData uint64 = 0x01
	RAMIDL1DTag  uint64 = 0x08
	RAMIDL1DData uint64 = 0x09
	RAMIDL2Tag   uint64 = 0x10
	RAMIDL2Data  uint64 = 0x11
	// RAMIDTLB and RAMIDBTB expose the translation and branch-target
	// buffers — two more of the "15 different internal RAMs" the paper
	// notes the Cortex-A72 exports through this interface. Their
	// contents are microarchitectural *history*, which Volt Boot turns
	// into an access-pattern side channel (Ablation E).
	RAMIDTLB uint64 = 0x18
	RAMIDBTB uint64 = 0x19
)

// RAMIndexRequest packs a RAMINDEX request word.
func RAMIndexRequest(ramID uint64, way, wordIndex int) uint64 {
	return ramID<<RAMIndexIDShift |
		uint64(way&RAMIndexWayMask)<<RAMIndexWayShift |
		uint64(uint32(wordIndex))
}

// UnpackRAMIndex splits a RAMINDEX request word.
//voltvet:hotpath
func UnpackRAMIndex(req uint64) (ramID uint64, way, wordIndex int) {
	return req >> RAMIndexIDShift,
		int(req >> RAMIndexWayShift & RAMIndexWayMask),
		int(uint32(req))
}

// Instr is a decoded instruction. Fields are used per-format; unused
// fields are zero.
type Instr struct {
	Op   Op
	Rd   int   // destination register (also Rt for loads/stores)
	Rn   int   // first source / base register
	Rm   int   // second source register
	Imm  int64 // immediate (sign-extended where the format is signed)
	Hw   int   // halfword shift selector for MOVZ/MOVK/MOVN (0–3)
	Cond Cond
	Sys  uint32 // system register id for MRS/MSR
	Idx  int    // 64-bit lane index for UMOV/INS
}

const (
	opShift = 26
	opMask  = 0x3F
)

// Encode packs the instruction into its 32-bit machine form. It panics on
// out-of-range fields — the assembler validates ranges and reports errors
// with source positions before calling Encode.
func (in Instr) Encode() uint32 {
	op := uint32(in.Op) << opShift
	r5 := func(r int, name string) uint32 {
		if r < 0 || r > 31 {
			panic(fmt.Sprintf("isa: register %s=%d out of range in %v", name, r, in.Op))
		}
		return uint32(r)
	}
	switch in.Op {
	case OpMOVZ, OpMOVK, OpMOVN:
		if in.Hw < 0 || in.Hw > 3 {
			panic("isa: hw out of range")
		}
		if in.Imm < 0 || in.Imm > 0xFFFF {
			panic("isa: imm16 out of range")
		}
		return op | uint32(in.Hw)<<24 | uint32(in.Imm)<<8 | r5(in.Rd, "rd")
	case OpADD, OpSUB, OpAND, OpORR, OpEOR, OpLSLV, OpLSRV, OpMUL, OpSUBS, OpADDS, OpVEOR:
		return op | r5(in.Rm, "rm")<<21 | r5(in.Rn, "rn")<<16 | r5(in.Rd, "rd")
	case OpADDI, OpSUBI, OpSUBSI:
		if in.Imm < 0 || in.Imm > 0xFFF {
			panic("isa: imm12 out of range")
		}
		return op | uint32(in.Imm)<<14 | r5(in.Rn, "rn")<<5 | r5(in.Rd, "rd")
	case OpLDR, OpSTR, OpLDRW, OpSTRW, OpLDRB, OpSTRB, OpVLDR, OpVSTR:
		scale := int64(accessSize(in.Op))
		if in.Imm%scale != 0 {
			panic(fmt.Sprintf("isa: unaligned offset %d for %v", in.Imm, in.Op))
		}
		scaled := in.Imm / scale
		if scaled < 0 || scaled > 0xFFF {
			panic("isa: scaled offset out of range")
		}
		return op | uint32(scaled)<<14 | r5(in.Rn, "rn")<<5 | r5(in.Rd, "rt")
	case OpB, OpBL:
		if in.Imm < -(1<<25) || in.Imm >= 1<<25 {
			panic("isa: branch offset out of range")
		}
		return op | uint32(in.Imm)&0x03FFFFFF
	case OpBCond:
		if in.Imm < -(1<<17) || in.Imm >= 1<<17 {
			panic("isa: conditional branch offset out of range")
		}
		return op | uint32(in.Cond)<<22 | (uint32(in.Imm)&0x3FFFF)<<4
	case OpCBZ, OpCBNZ:
		if in.Imm < -(1<<20) || in.Imm >= 1<<20 {
			panic("isa: cbz offset out of range")
		}
		return op | (uint32(in.Imm)&0x1FFFFF)<<5 | r5(in.Rd, "rt")
	case OpRET:
		return op | r5(in.Rn, "rn")<<5
	case OpNOP, OpDSB, OpISB, OpICIALLU:
		return op
	case OpHLT:
		if in.Imm < 0 || in.Imm > 0xFFFF {
			panic("isa: hlt imm16 out of range")
		}
		return op | uint32(in.Imm)<<8
	case OpMRS, OpMSR:
		if in.Sys > 0xFFFF {
			panic("isa: sysreg id out of range")
		}
		return op | in.Sys<<5 | r5(in.Rd, "rd")
	case OpDCZVA, OpDCCIVAC:
		return op | r5(in.Rd, "rt")
	case OpVMOVI:
		if in.Imm < 0 || in.Imm > 0xFF {
			panic("isa: vmovi imm8 out of range")
		}
		return op | uint32(in.Imm)<<16 | r5(in.Rd, "vd")
	case OpUMOV, OpINS:
		if in.Idx < 0 || in.Idx > 1 {
			panic("isa: lane index out of range")
		}
		return op | uint32(in.Idx)<<10 | r5(in.Rn, "rn")<<5 | r5(in.Rd, "rd")
	default:
		panic(fmt.Sprintf("isa: cannot encode op %#x", uint32(in.Op)))
	}
}

// accessSize returns the memory access width in bytes for a load/store op.
//voltvet:hotpath
func accessSize(op Op) int {
	switch op {
	case OpLDR, OpSTR:
		return 8
	case OpLDRW, OpSTRW:
		return 4
	case OpLDRB, OpSTRB:
		return 1
	case OpVLDR, OpVSTR:
		return 16
	default:
		return 0
	}
}

//voltvet:hotpath
func signExtend(v uint32, bits uint) int64 {
	shift := 64 - bits
	return int64(uint64(v)<<shift) >> shift
}

// Decode unpacks a 32-bit machine word. Unknown opcodes yield an Instr
// with Op == OpInvalid; the CPU raises an undefined-instruction error when
// executing one, which is exactly what happens when a core branches into
// retained-but-random SRAM.
//voltvet:hotpath
func Decode(word uint32) Instr {
	op := Op(word >> opShift & opMask)
	in := Instr{Op: op}
	switch op {
	case OpMOVZ, OpMOVK, OpMOVN:
		in.Hw = int(word >> 24 & 3)
		in.Imm = int64(word >> 8 & 0xFFFF)
		in.Rd = int(word & 31)
	case OpADD, OpSUB, OpAND, OpORR, OpEOR, OpLSLV, OpLSRV, OpMUL, OpSUBS, OpADDS, OpVEOR:
		in.Rm = int(word >> 21 & 31)
		in.Rn = int(word >> 16 & 31)
		in.Rd = int(word & 31)
	case OpADDI, OpSUBI, OpSUBSI:
		in.Imm = int64(word >> 14 & 0xFFF)
		in.Rn = int(word >> 5 & 31)
		in.Rd = int(word & 31)
	case OpLDR, OpSTR, OpLDRW, OpSTRW, OpLDRB, OpSTRB, OpVLDR, OpVSTR:
		in.Imm = int64(word>>14&0xFFF) * int64(accessSize(op))
		in.Rn = int(word >> 5 & 31)
		in.Rd = int(word & 31)
	case OpB, OpBL:
		in.Imm = signExtend(word&0x03FFFFFF, 26)
	case OpBCond:
		in.Cond = Cond(word >> 22 & 0xF)
		in.Imm = signExtend(word>>4&0x3FFFF, 18)
	case OpCBZ, OpCBNZ:
		in.Imm = signExtend(word>>5&0x1FFFFF, 21)
		in.Rd = int(word & 31)
	case OpRET:
		in.Rn = int(word >> 5 & 31)
	case OpNOP, OpDSB, OpISB, OpICIALLU:
	case OpHLT:
		in.Imm = int64(word >> 8 & 0xFFFF)
	case OpMRS, OpMSR:
		in.Sys = word >> 5 & 0xFFFF
		in.Rd = int(word & 31)
	case OpDCZVA, OpDCCIVAC:
		in.Rd = int(word & 31)
	case OpVMOVI:
		in.Imm = int64(word >> 16 & 0xFF)
		in.Rd = int(word & 31)
	case OpUMOV, OpINS:
		in.Idx = int(word >> 10 & 1)
		in.Rn = int(word >> 5 & 31)
		in.Rd = int(word & 31)
	default:
		in.Op = OpInvalid
	}
	return in
}

// NOPWord is the encoded NOP instruction, used by experiments that fill
// caches with NOP sleds (§7.1.1).
var NOPWord = Instr{Op: OpNOP}.Encode()
