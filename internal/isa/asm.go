package isa

import (
	"fmt"
	"strconv"
	"strings"
)

// AsmError is an assembly failure annotated with the 1-based source line.
type AsmError struct {
	Line int
	Msg  string
}

func (e *AsmError) Error() string { return fmt.Sprintf("asm: line %d: %s", e.Line, e.Msg) }

// Assemble translates VBA64 assembly source into machine words. base is
// the load address of the first instruction, used to resolve label
// displacements.
//
// Syntax summary:
//
//	label:                      ; labels end with ':'
//	  MOVZ X0, #0x10, LSL #16   ; comments start with ';' or '//'
//	  MOVK X0, #0xAA
//	  LDIMM X1, #0x123456789AB  ; pseudo: expands to MOVZ/MOVK sequence
//	  MOV X2, X1                ; pseudo: ORR X2, XZR, X1
//	  ADD X3, X2, X1
//	  ADDI X3, X3, #8
//	  LDR X4, [X3, #16]
//	  STR X4, [X3]
//	  CMP X3, X1                ; pseudo: SUBS XZR, X3, X1
//	  CMPI X3, #0               ; pseudo: SUBSI XZR, X3, #0
//	  B.NE label
//	  CBZ X3, label
//	  BL func
//	  RET
//	  DSB
//	  ISB
//	  MRS X5, RAMDATA0
//	  MSR RAMINDEX, X5
//	  DC ZVA, X6
//	  DC CIVAC, X6
//	  IC IALLU
//	  VMOVI V0, #0xAA
//	  VSTR V0, [X1, #32]
//	  UMOV X7, V0, #1
//	  INS V0, X7, #0
//	  HLT #0
//	  .word 0xDEADBEEF          ; literal data word
//
// LDIMM always expands to exactly four words (MOVZ + 3×MOVK) so that
// label arithmetic stays stable between passes.
func Assemble(base uint64, src string) ([]uint32, error) {
	lines := strings.Split(src, "\n")

	type item struct {
		line  int
		text  string
		label string
	}
	var items []item
	for i, raw := range lines {
		text := raw
		if idx := strings.Index(text, ";"); idx >= 0 {
			text = text[:idx]
		}
		if idx := strings.Index(text, "//"); idx >= 0 {
			text = text[:idx]
		}
		text = strings.TrimSpace(text)
		if text == "" {
			continue
		}
		// A line may carry "label: instr".
		for {
			colon := strings.Index(text, ":")
			if colon < 0 {
				break
			}
			label := strings.TrimSpace(text[:colon])
			if label == "" || strings.ContainsAny(label, " \t,[]#") {
				break // ':' inside something else; leave to the parser to reject
			}
			items = append(items, item{line: i + 1, label: label})
			text = strings.TrimSpace(text[colon+1:])
		}
		if text != "" {
			items = append(items, item{line: i + 1, text: text})
		}
	}

	// Pass 1: assign addresses to labels. Every instruction is 4 bytes;
	// pseudo LDIMM is 16; .word is 4.
	labels := map[string]uint64{}
	pc := base
	for _, it := range items {
		if it.label != "" {
			if _, dup := labels[it.label]; dup {
				return nil, &AsmError{it.line, "duplicate label " + it.label}
			}
			labels[it.label] = pc
			continue
		}
		n, err := wordCount(it.text)
		if err != nil {
			return nil, &AsmError{it.line, err.Error()}
		}
		pc += uint64(n) * 4
	}

	// Pass 2: encode.
	var out []uint32
	pc = base
	for _, it := range items {
		if it.label != "" {
			continue
		}
		words, err := encodeLine(it.text, pc, labels)
		if err != nil {
			return nil, &AsmError{it.line, err.Error()}
		}
		out = append(out, words...)
		pc += uint64(len(words)) * 4
	}
	return out, nil
}

// wordCount returns how many 32-bit words a source line assembles to.
func wordCount(text string) (int, error) {
	mn, _ := splitMnemonic(text)
	switch mn {
	case "LDIMM":
		return 4, nil
	default:
		return 1, nil
	}
}

func splitMnemonic(text string) (mnemonic, rest string) {
	sp := strings.IndexAny(text, " \t")
	if sp < 0 {
		return strings.ToUpper(text), ""
	}
	return strings.ToUpper(text[:sp]), strings.TrimSpace(text[sp+1:])
}

// operands splits the operand list on commas, respecting [] bracketing.
func operands(rest string) []string {
	if rest == "" {
		return nil
	}
	var out []string
	depth := 0
	start := 0
	for i := 0; i < len(rest); i++ {
		switch rest[i] {
		case '[':
			depth++
		case ']':
			depth--
		case ',':
			if depth == 0 {
				out = append(out, strings.TrimSpace(rest[start:i]))
				start = i + 1
			}
		}
	}
	out = append(out, strings.TrimSpace(rest[start:]))
	return out
}

func parseXReg(s string) (int, error) {
	u := strings.ToUpper(strings.TrimSpace(s))
	if u == "XZR" {
		return XZR, nil
	}
	if strings.HasPrefix(u, "X") {
		n, err := strconv.Atoi(u[1:])
		if err == nil && n >= 0 && n <= 30 {
			return n, nil
		}
	}
	return 0, fmt.Errorf("bad X register %q", s)
}

func parseVReg(s string) (int, error) {
	u := strings.ToUpper(strings.TrimSpace(s))
	if strings.HasPrefix(u, "V") {
		n, err := strconv.Atoi(u[1:])
		if err == nil && n >= 0 && n <= 31 {
			return n, nil
		}
	}
	return 0, fmt.Errorf("bad V register %q", s)
}

func parseImm(s string) (int64, error) {
	u := strings.TrimSpace(s)
	if !strings.HasPrefix(u, "#") {
		return 0, fmt.Errorf("immediate must start with '#': %q", s)
	}
	u = strings.TrimPrefix(u, "#")
	neg := strings.HasPrefix(u, "-")
	if neg {
		u = u[1:]
	}
	v, err := strconv.ParseUint(u, 0, 64)
	if err != nil {
		return 0, fmt.Errorf("bad immediate %q: %v", s, err)
	}
	iv := int64(v)
	if neg {
		iv = -iv
	}
	return iv, nil
}

// parseMem parses "[Xn]" or "[Xn, #off]".
func parseMem(s string) (rn int, off int64, err error) {
	u := strings.TrimSpace(s)
	if !strings.HasPrefix(u, "[") || !strings.HasSuffix(u, "]") {
		return 0, 0, fmt.Errorf("bad memory operand %q", s)
	}
	inner := strings.TrimSpace(u[1 : len(u)-1])
	parts := strings.SplitN(inner, ",", 2)
	rn, err = parseXReg(parts[0])
	if err != nil {
		return 0, 0, err
	}
	if len(parts) == 2 {
		off, err = parseImm(parts[1])
		if err != nil {
			return 0, 0, err
		}
	}
	return rn, off, nil
}

// branchTarget resolves a label or ".+n"/".-n" relative target to a word
// displacement from pc.
func branchTarget(s string, pc uint64, labels map[string]uint64) (int64, error) {
	u := strings.TrimSpace(s)
	if strings.HasPrefix(u, ".") {
		n, err := strconv.ParseInt(u[1:], 0, 64)
		if err != nil {
			return 0, fmt.Errorf("bad relative target %q", s)
		}
		return n, nil
	}
	addr, ok := labels[u]
	if !ok {
		return 0, fmt.Errorf("undefined label %q", u)
	}
	diff := int64(addr) - int64(pc)
	if diff%4 != 0 {
		return 0, fmt.Errorf("misaligned branch target %q", u)
	}
	return diff / 4, nil
}

func encodeLine(text string, pc uint64, labels map[string]uint64) ([]uint32, error) {
	mn, rest := splitMnemonic(text)
	ops := operands(rest)
	one := func(in Instr) ([]uint32, error) { return []uint32{in.Encode()}, nil }

	need := func(n int) error {
		if len(ops) != n {
			return fmt.Errorf("%s expects %d operands, got %d", mn, n, len(ops))
		}
		return nil
	}

	switch mn {
	case ".WORD":
		if err := need(1); err != nil {
			return nil, err
		}
		v, err := strconv.ParseUint(strings.TrimPrefix(ops[0], "#"), 0, 32)
		if err != nil {
			return nil, fmt.Errorf("bad .word value %q", ops[0])
		}
		return []uint32{uint32(v)}, nil

	case "MOVZ", "MOVK", "MOVN":
		if len(ops) != 2 && len(ops) != 3 {
			return nil, fmt.Errorf("%s expects Xd, #imm16 [, LSL #shift]", mn)
		}
		rd, err := parseXReg(ops[0])
		if err != nil {
			return nil, err
		}
		imm, err := parseImm(ops[1])
		if err != nil {
			return nil, err
		}
		hw := 0
		if len(ops) == 3 {
			fields := strings.Fields(strings.ToUpper(ops[2]))
			if len(fields) != 2 || fields[0] != "LSL" {
				return nil, fmt.Errorf("%s: third operand must be 'LSL #shift', got %q", mn, ops[2])
			}
			shift, err := parseImm(fields[1])
			if err != nil {
				return nil, err
			}
			if shift%16 != 0 || shift < 0 || shift > 48 {
				return nil, fmt.Errorf("%s shift must be 0/16/32/48, got %d", mn, shift)
			}
			hw = int(shift / 16)
		}
		op := map[string]Op{"MOVZ": OpMOVZ, "MOVK": OpMOVK, "MOVN": OpMOVN}[mn]
		if imm < 0 || imm > 0xFFFF {
			return nil, fmt.Errorf("%s immediate out of 16-bit range: %d", mn, imm)
		}
		return one(Instr{Op: op, Rd: rd, Imm: imm, Hw: hw})

	case "LDIMM":
		if err := need(2); err != nil {
			return nil, err
		}
		rd, err := parseXReg(ops[0])
		if err != nil {
			return nil, err
		}
		var val uint64
		if strings.HasPrefix(strings.TrimSpace(ops[1]), "#") {
			imm, err := parseImm(ops[1])
			if err != nil {
				return nil, err
			}
			val = uint64(imm)
		} else if addr, ok := labels[strings.TrimSpace(ops[1])]; ok {
			val = addr
		} else {
			return nil, fmt.Errorf("LDIMM operand must be #imm or label, got %q", ops[1])
		}
		words := make([]uint32, 0, 4)
		words = append(words, Instr{Op: OpMOVZ, Rd: rd, Imm: int64(val & 0xFFFF)}.Encode())
		for hw := 1; hw < 4; hw++ {
			chunk := int64(val >> (16 * uint(hw)) & 0xFFFF)
			words = append(words, Instr{Op: OpMOVK, Rd: rd, Imm: chunk, Hw: hw}.Encode())
		}
		return words, nil

	case "MOV":
		if err := need(2); err != nil {
			return nil, err
		}
		rd, err := parseXReg(ops[0])
		if err != nil {
			return nil, err
		}
		if strings.HasPrefix(strings.TrimSpace(ops[1]), "#") {
			imm, err := parseImm(ops[1])
			if err != nil {
				return nil, err
			}
			if imm < 0 || imm > 0xFFFF {
				return nil, fmt.Errorf("MOV immediate out of 16-bit range; use LDIMM")
			}
			return one(Instr{Op: OpMOVZ, Rd: rd, Imm: imm})
		}
		rm, err := parseXReg(ops[1])
		if err != nil {
			return nil, err
		}
		return one(Instr{Op: OpORR, Rd: rd, Rn: XZR, Rm: rm})

	case "ADD", "SUB", "AND", "ORR", "EOR", "LSL", "LSR", "MUL", "SUBS", "ADDS":
		if err := need(3); err != nil {
			return nil, err
		}
		rd, err := parseXReg(ops[0])
		if err != nil {
			return nil, err
		}
		rn, err := parseXReg(ops[1])
		if err != nil {
			return nil, err
		}
		rm, err := parseXReg(ops[2])
		if err != nil {
			return nil, err
		}
		op := map[string]Op{
			"ADD": OpADD, "SUB": OpSUB, "AND": OpAND, "ORR": OpORR, "EOR": OpEOR,
			"LSL": OpLSLV, "LSR": OpLSRV, "MUL": OpMUL, "SUBS": OpSUBS, "ADDS": OpADDS,
		}[mn]
		return one(Instr{Op: op, Rd: rd, Rn: rn, Rm: rm})

	case "VEOR":
		if err := need(3); err != nil {
			return nil, err
		}
		vd, err := parseVReg(ops[0])
		if err != nil {
			return nil, err
		}
		vn, err := parseVReg(ops[1])
		if err != nil {
			return nil, err
		}
		vm, err := parseVReg(ops[2])
		if err != nil {
			return nil, err
		}
		return one(Instr{Op: OpVEOR, Rd: vd, Rn: vn, Rm: vm})

	case "ADDI", "SUBI", "SUBSI":
		if err := need(3); err != nil {
			return nil, err
		}
		rd, err := parseXReg(ops[0])
		if err != nil {
			return nil, err
		}
		rn, err := parseXReg(ops[1])
		if err != nil {
			return nil, err
		}
		imm, err := parseImm(ops[2])
		if err != nil {
			return nil, err
		}
		if imm < 0 || imm > 0xFFF {
			return nil, fmt.Errorf("%s immediate out of 12-bit range: %d", mn, imm)
		}
		op := map[string]Op{"ADDI": OpADDI, "SUBI": OpSUBI, "SUBSI": OpSUBSI}[mn]
		return one(Instr{Op: op, Rd: rd, Rn: rn, Imm: imm})

	case "CMP":
		if err := need(2); err != nil {
			return nil, err
		}
		rn, err := parseXReg(ops[0])
		if err != nil {
			return nil, err
		}
		rm, err := parseXReg(ops[1])
		if err != nil {
			return nil, err
		}
		return one(Instr{Op: OpSUBS, Rd: XZR, Rn: rn, Rm: rm})

	case "CMPI":
		if err := need(2); err != nil {
			return nil, err
		}
		rn, err := parseXReg(ops[0])
		if err != nil {
			return nil, err
		}
		imm, err := parseImm(ops[1])
		if err != nil {
			return nil, err
		}
		if imm < 0 || imm > 0xFFF {
			return nil, fmt.Errorf("CMPI immediate out of 12-bit range: %d", imm)
		}
		return one(Instr{Op: OpSUBSI, Rd: XZR, Rn: rn, Imm: imm})

	case "LDR", "STR", "LDRW", "STRW", "LDRB", "STRB":
		if err := need(2); err != nil {
			return nil, err
		}
		rt, err := parseXReg(ops[0])
		if err != nil {
			return nil, err
		}
		rn, off, err := parseMem(ops[1])
		if err != nil {
			return nil, err
		}
		op := map[string]Op{
			"LDR": OpLDR, "STR": OpSTR, "LDRW": OpLDRW,
			"STRW": OpSTRW, "LDRB": OpLDRB, "STRB": OpSTRB,
		}[mn]
		sz := int64(accessSize(op))
		if off%sz != 0 || off < 0 || off/sz > 0xFFF {
			return nil, fmt.Errorf("%s offset %d invalid (must be 0..%d in steps of %d)", mn, off, 0xFFF*sz, sz)
		}
		return one(Instr{Op: op, Rd: rt, Rn: rn, Imm: off})

	case "VLDR", "VSTR":
		if err := need(2); err != nil {
			return nil, err
		}
		vt, err := parseVReg(ops[0])
		if err != nil {
			return nil, err
		}
		rn, off, err := parseMem(ops[1])
		if err != nil {
			return nil, err
		}
		op := OpVLDR
		if mn == "VSTR" {
			op = OpVSTR
		}
		if off%16 != 0 || off < 0 || off/16 > 0xFFF {
			return nil, fmt.Errorf("%s offset %d invalid (16-byte aligned)", mn, off)
		}
		return one(Instr{Op: op, Rd: vt, Rn: rn, Imm: off})

	case "B.EQ", "B.NE", "B.LT", "B.GE", "B.LO", "B.HS", "B.GT", "B.LE":
		if err := need(1); err != nil {
			return nil, err
		}
		var cond Cond
		for c, name := range condNames {
			if name == strings.TrimPrefix(mn, "B.") {
				cond = c
			}
		}
		disp, err := branchTarget(ops[0], pc, labels)
		if err != nil {
			return nil, err
		}
		return one(Instr{Op: OpBCond, Cond: cond, Imm: disp})

	case "B", "BL":
		if err := need(1); err != nil {
			return nil, err
		}
		disp, err := branchTarget(ops[0], pc, labels)
		if err != nil {
			return nil, err
		}
		op := OpB
		if mn == "BL" {
			op = OpBL
		}
		return one(Instr{Op: op, Imm: disp})

	case "CBZ", "CBNZ":
		if err := need(2); err != nil {
			return nil, err
		}
		rt, err := parseXReg(ops[0])
		if err != nil {
			return nil, err
		}
		disp, err := branchTarget(ops[1], pc, labels)
		if err != nil {
			return nil, err
		}
		op := OpCBZ
		if mn == "CBNZ" {
			op = OpCBNZ
		}
		return one(Instr{Op: op, Rd: rt, Imm: disp})

	case "RET":
		rn := 30
		if len(ops) == 1 {
			var err error
			rn, err = parseXReg(ops[0])
			if err != nil {
				return nil, err
			}
		} else if len(ops) != 0 {
			return nil, fmt.Errorf("RET takes at most one register")
		}
		return one(Instr{Op: OpRET, Rn: rn})

	case "NOP":
		return one(Instr{Op: OpNOP})
	case "DSB":
		return one(Instr{Op: OpDSB})
	case "ISB":
		return one(Instr{Op: OpISB})

	case "HLT":
		imm := int64(0)
		if len(ops) == 1 {
			var err error
			imm, err = parseImm(ops[0])
			if err != nil {
				return nil, err
			}
		}
		return one(Instr{Op: OpHLT, Imm: imm})

	case "MRS":
		if err := need(2); err != nil {
			return nil, err
		}
		rd, err := parseXReg(ops[0])
		if err != nil {
			return nil, err
		}
		sys, ok := SysRegByName(strings.ToUpper(strings.TrimSpace(ops[1])))
		if !ok {
			return nil, fmt.Errorf("unknown system register %q", ops[1])
		}
		return one(Instr{Op: OpMRS, Rd: rd, Sys: sys})

	case "MSR":
		if err := need(2); err != nil {
			return nil, err
		}
		sys, ok := SysRegByName(strings.ToUpper(strings.TrimSpace(ops[0])))
		if !ok {
			return nil, fmt.Errorf("unknown system register %q", ops[0])
		}
		rt, err := parseXReg(ops[1])
		if err != nil {
			return nil, err
		}
		return one(Instr{Op: OpMSR, Rd: rt, Sys: sys})

	case "DC":
		if err := need(2); err != nil {
			return nil, err
		}
		kind := strings.ToUpper(strings.TrimSpace(ops[0]))
		rt, err := parseXReg(ops[1])
		if err != nil {
			return nil, err
		}
		switch kind {
		case "ZVA":
			return one(Instr{Op: OpDCZVA, Rd: rt})
		case "CIVAC":
			return one(Instr{Op: OpDCCIVAC, Rd: rt})
		default:
			return nil, fmt.Errorf("unsupported DC operation %q", kind)
		}

	case "IC":
		if err := need(1); err != nil {
			return nil, err
		}
		if strings.ToUpper(strings.TrimSpace(ops[0])) != "IALLU" {
			return nil, fmt.Errorf("unsupported IC operation %q", ops[0])
		}
		return one(Instr{Op: OpICIALLU})

	case "VMOVI":
		if err := need(2); err != nil {
			return nil, err
		}
		vd, err := parseVReg(ops[0])
		if err != nil {
			return nil, err
		}
		imm, err := parseImm(ops[1])
		if err != nil {
			return nil, err
		}
		if imm < 0 || imm > 0xFF {
			return nil, fmt.Errorf("VMOVI immediate out of byte range: %d", imm)
		}
		return one(Instr{Op: OpVMOVI, Rd: vd, Imm: imm})

	case "UMOV":
		if err := need(3); err != nil {
			return nil, err
		}
		rd, err := parseXReg(ops[0])
		if err != nil {
			return nil, err
		}
		vn, err := parseVReg(ops[1])
		if err != nil {
			return nil, err
		}
		idx, err := parseImm(ops[2])
		if err != nil {
			return nil, err
		}
		if idx < 0 || idx > 1 {
			return nil, fmt.Errorf("UMOV lane must be 0 or 1")
		}
		return one(Instr{Op: OpUMOV, Rd: rd, Rn: vn, Idx: int(idx)})

	case "INS":
		if err := need(3); err != nil {
			return nil, err
		}
		vd, err := parseVReg(ops[0])
		if err != nil {
			return nil, err
		}
		rn, err := parseXReg(ops[1])
		if err != nil {
			return nil, err
		}
		idx, err := parseImm(ops[2])
		if err != nil {
			return nil, err
		}
		if idx < 0 || idx > 1 {
			return nil, fmt.Errorf("INS lane must be 0 or 1")
		}
		return one(Instr{Op: OpINS, Rd: vd, Rn: rn, Idx: int(idx)})

	default:
		return nil, fmt.Errorf("unknown mnemonic %q", mn)
	}
}
