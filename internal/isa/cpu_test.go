package isa

import (
	"errors"
	"fmt"
	"testing"
)

// flatBus is a simple flat-memory Bus + SysOps for CPU unit tests.
type flatBus struct {
	mem       []byte
	zvaCalls  []uint64
	civacs    []uint64
	ialluN    int
	barriers  int
	ramindexF func(req uint64, el int) (uint64, bool)
}

func newFlatBus(size int) *flatBus { return &flatBus{mem: make([]byte, size)} }

func (b *flatBus) check(addr uint64, size int) error {
	if addr+uint64(size) > uint64(len(b.mem)) {
		return fmt.Errorf("flatBus: access %#x+%d out of range", addr, size)
	}
	return nil
}

func (b *flatBus) FetchInstr(core int, addr uint64) (uint32, error) {
	if err := b.check(addr, 4); err != nil {
		return 0, err
	}
	return uint32(b.mem[addr]) | uint32(b.mem[addr+1])<<8 | uint32(b.mem[addr+2])<<16 | uint32(b.mem[addr+3])<<24, nil
}

func (b *flatBus) Load(core int, addr uint64, size int) (uint64, error) {
	if err := b.check(addr, size); err != nil {
		return 0, err
	}
	var v uint64
	for i := 0; i < size; i++ {
		v |= uint64(b.mem[addr+uint64(i)]) << (8 * i)
	}
	return v, nil
}

func (b *flatBus) Store(core int, addr uint64, size int, v uint64) error {
	if err := b.check(addr, size); err != nil {
		return err
	}
	for i := 0; i < size; i++ {
		b.mem[addr+uint64(i)] = byte(v >> (8 * i))
	}
	return nil
}

func (b *flatBus) Load128(core int, addr uint64) ([2]uint64, error) {
	lo, err := b.Load(core, addr, 8)
	if err != nil {
		return [2]uint64{}, err
	}
	hi, err := b.Load(core, addr+8, 8)
	return [2]uint64{lo, hi}, err
}

func (b *flatBus) Store128(core int, addr uint64, v [2]uint64) error {
	if err := b.Store(core, addr, 8, v[0]); err != nil {
		return err
	}
	return b.Store(core, addr+8, 8, v[1])
}

func (b *flatBus) DCZVA(core int, addr uint64) error {
	b.zvaCalls = append(b.zvaCalls, addr)
	return nil
}
func (b *flatBus) DCCIVAC(core int, addr uint64) error {
	b.civacs = append(b.civacs, addr)
	return nil
}
func (b *flatBus) ICIALLU(core int) { b.ialluN++ }
func (b *flatBus) Barrier(core int) { b.barriers++ }
func (b *flatBus) RAMIndexRead(core int, req uint64, el int) (uint64, bool) {
	if b.ramindexF != nil {
		return b.ramindexF(req, el)
	}
	return 0, true
}

func (b *flatBus) loadWords(addr uint64, words []uint32) {
	for i, w := range words {
		a := addr + uint64(i)*4
		b.mem[a] = byte(w)
		b.mem[a+1] = byte(w >> 8)
		b.mem[a+2] = byte(w >> 16)
		b.mem[a+3] = byte(w >> 24)
	}
}

func newTestCPU(t testing.TB, words []uint32) *CPU {
	t.Helper()
	bus := newFlatBus(1 << 20)
	base := uint64(0x80000)
	bus.loadWords(base, words)
	cpu := NewCPU(0, &PlainRegs{}, bus, bus)
	cpu.Reset(base)
	return cpu
}

func mustAssemble(t testing.TB, base uint64, src string) []uint32 {
	t.Helper()
	words, err := Assemble(base, src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	return words
}

func runProgram(t testing.TB, src string) *CPU {
	t.Helper()
	words := mustAssemble(t, 0x80000, src)
	cpu := newTestCPU(t, words)
	if _, err := cpu.Run(1_000_000); err != nil {
		t.Fatalf("run: %v", err)
	}
	return cpu
}

func TestArithmeticProgram(t *testing.T) {
	cpu := runProgram(t, `
        MOVZ X0, #7
        MOVZ X1, #5
        ADD X2, X0, X1     ; 12
        SUB X3, X0, X1     ; 2
        MUL X4, X0, X1     ; 35
        AND X5, X0, X1     ; 5
        ORR X6, X0, X1     ; 7
        EOR X7, X0, X1     ; 2
        MOVZ X8, #2
        LSL X9, X0, X8     ; 28
        LSR X10, X0, X8    ; 1
        HLT #0
    `)
	want := map[int]uint64{2: 12, 3: 2, 4: 35, 5: 5, 6: 7, 7: 2, 9: 28, 10: 1}
	for r, v := range want {
		if got := cpu.X(r); got != v {
			t.Errorf("X%d = %d, want %d", r, got, v)
		}
	}
}

func TestLoopSum(t *testing.T) {
	// sum 1..10 = 55
	cpu := runProgram(t, `
        MOVZ X0, #10
        MOVZ X1, #0
loop:   ADD X1, X1, X0
        SUBI X0, X0, #1
        CBNZ X0, loop
        HLT #0
    `)
	if cpu.X(1) != 55 {
		t.Fatalf("sum = %d, want 55", cpu.X(1))
	}
}

func TestMemoryAccessSizes(t *testing.T) {
	cpu := runProgram(t, `
        LDIMM X0, #0x1122334455667788
        MOVZ X1, #0x4000
        STR X0, [X1]
        LDRB X2, [X1]        ; 0x88
        LDRW X3, [X1, #4]    ; 0x11223344
        LDR X4, [X1]
        MOVZ X5, #0xFF
        STRB X5, [X1, #1]
        LDR X6, [X1]         ; 0x112233445566FF88
        HLT #0
    `)
	if cpu.X(2) != 0x88 {
		t.Errorf("LDRB = %#x", cpu.X(2))
	}
	if cpu.X(3) != 0x11223344 {
		t.Errorf("LDRW = %#x", cpu.X(3))
	}
	if cpu.X(4) != 0x1122334455667788 {
		t.Errorf("LDR = %#x", cpu.X(4))
	}
	if cpu.X(6) != 0x112233445566FF88 {
		t.Errorf("after STRB: %#x", cpu.X(6))
	}
}

func TestConditionalBranches(t *testing.T) {
	// Classify 3 vs 7 with every condition and accumulate a bitmask of
	// branches taken.
	cpu := runProgram(t, `
        MOVZ X0, #3
        MOVZ X1, #7
        MOVZ X9, #0
        CMP X0, X1
        B.LT lt_ok
        HLT #1
lt_ok:  ADDI X9, X9, #1
        CMP X1, X0
        B.GT gt_ok
        HLT #2
gt_ok:  ADDI X9, X9, #2
        CMP X0, X0
        B.EQ eq_ok
        HLT #3
eq_ok:  ADDI X9, X9, #4
        CMP X0, X1
        B.NE ne_ok
        HLT #4
ne_ok:  ADDI X9, X9, #8
        CMP X0, X1
        B.LO lo_ok
        HLT #5
lo_ok:  ADDI X9, X9, #16
        CMP X1, X0
        B.HS hs_ok
        HLT #6
hs_ok:  ADDI X9, X9, #32
        CMP X0, X1
        B.LE le_ok
        HLT #7
le_ok:  ADDI X9, X9, #64
        CMP X1, X0
        B.GE ge_ok
        HLT #8
ge_ok:  ADDI X9, X9, #128
        HLT #0
    `)
	if cpu.HaltCode != 0 {
		t.Fatalf("halted with code %d", cpu.HaltCode)
	}
	if cpu.X(9) != 255 {
		t.Fatalf("branch mask = %d, want 255", cpu.X(9))
	}
}

func TestSignedVsUnsignedComparison(t *testing.T) {
	// -1 (all ones) is signed-less-than 1 but unsigned-greater.
	cpu := runProgram(t, `
        MOVN X0, #0       ; X0 = -1
        MOVZ X1, #1
        MOVZ X9, #0
        CMP X0, X1
        B.LT signed_ok
        HLT #1
signed_ok:
        ADDI X9, X9, #1
        CMP X0, X1
        B.HS unsigned_ok
        HLT #2
unsigned_ok:
        ADDI X9, X9, #2
        HLT #0
    `)
	if cpu.HaltCode != 0 || cpu.X(9) != 3 {
		t.Fatalf("halt=%d mask=%d", cpu.HaltCode, cpu.X(9))
	}
}

func TestBLAndRET(t *testing.T) {
	cpu := runProgram(t, `
        MOVZ X0, #1
        BL sub
        ADDI X0, X0, #100
        HLT #0
sub:    ADDI X0, X0, #10
        RET
    `)
	if cpu.X(0) != 111 {
		t.Fatalf("X0 = %d, want 111", cpu.X(0))
	}
}

func TestXZRBehaviour(t *testing.T) {
	cpu := runProgram(t, `
        MOVZ X1, #5
        ADD XZR, X1, X1   ; write discarded
        ADD X2, XZR, X1   ; X2 = 5
        HLT #0
    `)
	if cpu.X(2) != 5 {
		t.Fatalf("X2 = %d", cpu.X(2))
	}
}

func TestVectorRegisters(t *testing.T) {
	cpu := runProgram(t, `
        VMOVI V0, #0xAA
        VMOVI V1, #0xFF
        VEOR V2, V0, V1       ; 0x55 pattern
        UMOV X0, V2, #0
        UMOV X1, V2, #1
        LDIMM X2, #0xDEADBEEFCAFEF00D
        INS V3, X2, #1
        UMOV X3, V3, #1
        MOVZ X4, #0x4000
        VSTR V0, [X4]
        VLDR V5, [X4]
        UMOV X5, V5, #0
        HLT #0
    `)
	if cpu.X(0) != 0x5555555555555555 || cpu.X(1) != 0x5555555555555555 {
		t.Fatalf("VEOR lanes = %#x %#x", cpu.X(0), cpu.X(1))
	}
	if cpu.X(3) != 0xDEADBEEFCAFEF00D {
		t.Fatalf("INS/UMOV = %#x", cpu.X(3))
	}
	if cpu.X(5) != 0xAAAAAAAAAAAAAAAA {
		t.Fatalf("VSTR/VLDR = %#x", cpu.X(5))
	}
}

func TestSysRegs(t *testing.T) {
	words := mustAssemble(t, 0x80000, `
        MRS X0, CURRENTEL
        MRS X1, COREID
        MRS X2, CNT
        HLT #0
    `)
	bus := newFlatBus(1 << 20)
	bus.loadWords(0x80000, words)
	cpu := NewCPU(2, &PlainRegs{}, bus, bus)
	cpu.Reset(0x80000)
	if _, err := cpu.Run(100); err != nil {
		t.Fatal(err)
	}
	if cpu.X(0) != 3 {
		t.Errorf("CURRENTEL = %d, want 3", cpu.X(0))
	}
	if cpu.X(1) != 2 {
		t.Errorf("COREID = %d, want 2", cpu.X(1))
	}
	if cpu.X(2) != 2 { // CNT read after 2 retired instructions
		t.Errorf("CNT = %d, want 2", cpu.X(2))
	}
}

func TestRAMIndexPath(t *testing.T) {
	words := mustAssemble(t, 0x80000, `
        LDIMM X0, #0x0900000000000005   ; L1D data, way 0, word 5
        MSR RAMINDEX, X0
        DSB
        ISB
        MRS X1, RAMDATA0
        MRS X2, RAMSTATUS
        HLT #0
    `)
	bus := newFlatBus(1 << 20)
	bus.loadWords(0x80000, words)
	bus.ramindexF = func(req uint64, el int) (uint64, bool) {
		id, way, idx := UnpackRAMIndex(req)
		if id != RAMIDL1DData || way != 0 || idx != 5 || el != 3 {
			return 0, true
		}
		return 0xCAFEBABE, false
	}
	cpu := NewCPU(0, &PlainRegs{}, bus, bus)
	cpu.Reset(0x80000)
	if _, err := cpu.Run(100); err != nil {
		t.Fatal(err)
	}
	if cpu.X(1) != 0xCAFEBABE {
		t.Fatalf("RAMDATA0 = %#x", cpu.X(1))
	}
	if cpu.X(2) != 0 {
		t.Fatalf("RAMSTATUS = %d, want 0", cpu.X(2))
	}
	if bus.barriers != 2 {
		t.Fatalf("barriers = %d, want 2 (DSB+ISB)", bus.barriers)
	}
}

func TestRAMIndexFaultSetsStatus(t *testing.T) {
	words := mustAssemble(t, 0x80000, `
        MOVZ X0, #0
        MSR RAMINDEX, X0
        MRS X1, RAMDATA0
        MRS X2, RAMSTATUS
        HLT #0
    `)
	bus := newFlatBus(1 << 20)
	bus.loadWords(0x80000, words)
	// default ramindexF faults
	cpu := NewCPU(0, &PlainRegs{}, bus, bus)
	cpu.Reset(0x80000)
	if _, err := cpu.Run(100); err != nil {
		t.Fatal(err)
	}
	if cpu.X(1) != 0 || cpu.X(2) != 1 {
		t.Fatalf("fault latch wrong: data=%#x status=%d", cpu.X(1), cpu.X(2))
	}
}

func TestCacheMaintenanceOps(t *testing.T) {
	words := mustAssemble(t, 0x80000, `
        MOVZ X0, #0x4000
        DC ZVA, X0
        DC CIVAC, X0
        IC IALLU
        HLT #0
    `)
	bus := newFlatBus(1 << 20)
	bus.loadWords(0x80000, words)
	cpu := NewCPU(0, &PlainRegs{}, bus, bus)
	cpu.Reset(0x80000)
	if _, err := cpu.Run(100); err != nil {
		t.Fatal(err)
	}
	if len(bus.zvaCalls) != 1 || bus.zvaCalls[0] != 0x4000 {
		t.Fatalf("DC ZVA calls = %v", bus.zvaCalls)
	}
	if len(bus.civacs) != 1 || bus.civacs[0] != 0x4000 {
		t.Fatalf("DC CIVAC calls = %v", bus.civacs)
	}
	if bus.ialluN != 1 {
		t.Fatalf("IC IALLU count = %d", bus.ialluN)
	}
}

func TestSCRNSRequiresEL3(t *testing.T) {
	words := mustAssemble(t, 0x80000, `
        MOVZ X0, #1
        MSR SCR_NS, X0
        HLT #0
    `)
	bus := newFlatBus(1 << 20)
	bus.loadWords(0x80000, words)
	cpu := NewCPU(0, &PlainRegs{}, bus, bus)
	cpu.Reset(0x80000)
	cpu.EL = 1
	if _, err := cpu.Run(100); err == nil {
		t.Fatal("SCR_NS write at EL1 should fault")
	}
	cpu.Reset(0x80000)
	if _, err := cpu.Run(100); err != nil {
		t.Fatalf("SCR_NS write at EL3 should succeed: %v", err)
	}
}

func TestWriteToReadOnlySysRegFaults(t *testing.T) {
	cpuSrcs := []string{
		"MSR CURRENTEL, X0\nHLT #0",
		"MSR RAMDATA0, X0\nHLT #0",
	}
	for _, src := range cpuSrcs {
		words := mustAssemble(t, 0x80000, src)
		cpu := newTestCPU(t, words)
		if _, err := cpu.Run(10); err == nil {
			t.Errorf("program %q should fault", src)
		}
	}
}

func TestUndefinedInstruction(t *testing.T) {
	cpu := newTestCPU(t, []uint32{0xFFFFFFFF})
	err := cpu.Step()
	var ue *UndefinedError
	if !errors.As(err, &ue) {
		t.Fatalf("expected UndefinedError, got %v", err)
	}
}

func TestRunawayDetection(t *testing.T) {
	cpu := newTestCPU(t, mustAssemble(t, 0x80000, "loop: B loop"))
	_, err := cpu.Run(1000)
	var re *RunawayError
	if !errors.As(err, &re) {
		t.Fatalf("expected RunawayError, got %v", err)
	}
}

func TestMemoryFaultPropagates(t *testing.T) {
	cpu := newTestCPU(t, mustAssemble(t, 0x80000, `
        LDIMM X0, #0xFFFFFFFF00000000
        LDR X1, [X0]
        HLT #0
    `))
	if _, err := cpu.Run(100); err == nil {
		t.Fatal("out-of-range load should fault")
	}
}

func TestResetPreservesRegisterBacking(t *testing.T) {
	// The paper's §7.2 mechanism: reset must not clear register SRAM.
	regs := &PlainRegs{}
	regs.WriteV(7, [2]uint64{0xAAAA, 0xBBBB})
	bus := newFlatBus(1 << 20)
	bus.loadWords(0, []uint32{Instr{Op: OpHLT}.Encode()})
	cpu := NewCPU(0, regs, bus, bus)
	cpu.Reset(0)
	if v := cpu.V(7); v[0] != 0xAAAA || v[1] != 0xBBBB {
		t.Fatalf("Reset clobbered vector register backing: %v", v)
	}
}

func TestHaltStopsExecution(t *testing.T) {
	cpu := runProgram(t, "HLT #9\nMOVZ X0, #1\n")
	if cpu.X(0) != 0 {
		t.Fatal("instruction after HLT executed")
	}
	if cpu.HaltCode != 9 {
		t.Fatalf("halt code = %d", cpu.HaltCode)
	}
	// further steps are no-ops
	if err := cpu.Step(); err != nil || cpu.Instret != 1 {
		t.Fatalf("step after halt: err=%v instret=%d", err, cpu.Instret)
	}
}

func BenchmarkInterpreterLoop(b *testing.B) {
	words := mustAssemble(b, 0x80000, `
        LDIMM X0, #100000
loop:   SUBI X0, X0, #1
        CBNZ X0, loop
        HLT #0
    `)
	for i := 0; i < b.N; i++ {
		cpu := newTestCPU(b, words)
		if _, err := cpu.Run(10_000_000); err != nil {
			b.Fatal(err)
		}
	}
}
