package isa

// Differential fuzzing of the interpreter against an independent
// reference model: random straight-line programs of arithmetic, logic,
// move and vector-lane instructions run on both, and every architectural
// register must match at the end. The reference implementation is written
// against the ISA *specification* (the doc comments in isa.go), not the
// interpreter's code, so shared bugs are unlikely to cancel out.

import (
	"testing"

	"repro/internal/xrand"
)

// refState is the reference machine: plain values, no backing stores.
type refState struct {
	x           [32]uint64 // x[31] is XZR
	v           [32][2]uint64
	n, z, c, vf bool
}

func (r *refState) getX(i int) uint64 {
	if i == 31 {
		return 0
	}
	return r.x[i]
}

func (r *refState) setX(i int, val uint64) {
	if i != 31 {
		r.x[i] = val
	}
}

// refExec executes one decoded instruction on the reference machine.
// Only the straight-line subset the fuzzer generates is implemented.
func refExec(r *refState, in Instr) {
	switch in.Op {
	case OpMOVZ:
		r.setX(in.Rd, uint64(in.Imm)<<(16*uint(in.Hw)))
	case OpMOVK:
		mask := uint64(0xFFFF) << (16 * uint(in.Hw))
		r.setX(in.Rd, r.getX(in.Rd)&^mask|uint64(in.Imm)<<(16*uint(in.Hw)))
	case OpMOVN:
		r.setX(in.Rd, ^(uint64(in.Imm) << (16 * uint(in.Hw))))
	case OpADD:
		r.setX(in.Rd, r.getX(in.Rn)+r.getX(in.Rm))
	case OpSUB:
		r.setX(in.Rd, r.getX(in.Rn)-r.getX(in.Rm))
	case OpAND:
		r.setX(in.Rd, r.getX(in.Rn)&r.getX(in.Rm))
	case OpORR:
		r.setX(in.Rd, r.getX(in.Rn)|r.getX(in.Rm))
	case OpEOR:
		r.setX(in.Rd, r.getX(in.Rn)^r.getX(in.Rm))
	case OpLSLV:
		r.setX(in.Rd, r.getX(in.Rn)<<(r.getX(in.Rm)&63))
	case OpLSRV:
		r.setX(in.Rd, r.getX(in.Rn)>>(r.getX(in.Rm)&63))
	case OpMUL:
		r.setX(in.Rd, r.getX(in.Rn)*r.getX(in.Rm))
	case OpADDS:
		a, b := r.getX(in.Rn), r.getX(in.Rm)
		res := a + b
		r.n, r.z = res>>63 == 1, res == 0
		r.c = res < a
		r.vf = (a>>63 == b>>63) && (res>>63 != a>>63)
		r.setX(in.Rd, res)
	case OpSUBS:
		a, b := r.getX(in.Rn), r.getX(in.Rm)
		res := a - b
		r.n, r.z = res>>63 == 1, res == 0
		r.c = a >= b
		r.vf = (a>>63 != b>>63) && (res>>63 != a>>63)
		r.setX(in.Rd, res)
	case OpADDI:
		r.setX(in.Rd, r.getX(in.Rn)+uint64(in.Imm))
	case OpSUBI:
		r.setX(in.Rd, r.getX(in.Rn)-uint64(in.Imm))
	case OpSUBSI:
		a, b := r.getX(in.Rn), uint64(in.Imm)
		res := a - b
		r.n, r.z = res>>63 == 1, res == 0
		r.c = a >= b
		r.vf = (a>>63 != b>>63) && (res>>63 != a>>63)
		r.setX(in.Rd, res)
	case OpVMOVI:
		b := uint64(in.Imm)
		rep := b | b<<8 | b<<16 | b<<24 | b<<32 | b<<40 | b<<48 | b<<56
		r.v[in.Rd] = [2]uint64{rep, rep}
	case OpVEOR:
		r.v[in.Rd] = [2]uint64{r.v[in.Rn][0] ^ r.v[in.Rm][0], r.v[in.Rn][1] ^ r.v[in.Rm][1]}
	case OpUMOV:
		r.setX(in.Rd, r.v[in.Rn][in.Idx])
	case OpINS:
		r.v[in.Rd][in.Idx] = r.getX(in.Rn)
	case OpNOP, OpHLT:
	default:
		panic("refExec: unsupported op in fuzz subset")
	}
}

// randInstr draws one instruction from the straight-line subset.
func randInstr(rng *xrand.Rand) Instr {
	reg := func() int { return rng.Intn(32) } // includes XZR
	vreg := func() int { return rng.Intn(32) }
	switch rng.Intn(21) {
	case 0:
		return Instr{Op: OpMOVZ, Rd: reg(), Imm: int64(rng.Intn(1 << 16)), Hw: rng.Intn(4)}
	case 1:
		return Instr{Op: OpMOVK, Rd: reg(), Imm: int64(rng.Intn(1 << 16)), Hw: rng.Intn(4)}
	case 2:
		return Instr{Op: OpMOVN, Rd: reg(), Imm: int64(rng.Intn(1 << 16)), Hw: rng.Intn(4)}
	case 3:
		return Instr{Op: OpADD, Rd: reg(), Rn: reg(), Rm: reg()}
	case 4:
		return Instr{Op: OpSUB, Rd: reg(), Rn: reg(), Rm: reg()}
	case 5:
		return Instr{Op: OpAND, Rd: reg(), Rn: reg(), Rm: reg()}
	case 6:
		return Instr{Op: OpORR, Rd: reg(), Rn: reg(), Rm: reg()}
	case 7:
		return Instr{Op: OpEOR, Rd: reg(), Rn: reg(), Rm: reg()}
	case 8:
		return Instr{Op: OpLSLV, Rd: reg(), Rn: reg(), Rm: reg()}
	case 9:
		return Instr{Op: OpLSRV, Rd: reg(), Rn: reg(), Rm: reg()}
	case 10:
		return Instr{Op: OpMUL, Rd: reg(), Rn: reg(), Rm: reg()}
	case 11:
		return Instr{Op: OpADDS, Rd: reg(), Rn: reg(), Rm: reg()}
	case 12:
		return Instr{Op: OpSUBS, Rd: reg(), Rn: reg(), Rm: reg()}
	case 13:
		return Instr{Op: OpADDI, Rd: reg(), Rn: reg(), Imm: int64(rng.Intn(1 << 12))}
	case 14:
		return Instr{Op: OpSUBI, Rd: reg(), Rn: reg(), Imm: int64(rng.Intn(1 << 12))}
	case 15:
		return Instr{Op: OpSUBSI, Rd: reg(), Rn: reg(), Imm: int64(rng.Intn(1 << 12))}
	case 16:
		return Instr{Op: OpVMOVI, Rd: vreg(), Imm: int64(rng.Intn(256))}
	case 17:
		return Instr{Op: OpVEOR, Rd: vreg(), Rn: vreg(), Rm: vreg()}
	case 18:
		return Instr{Op: OpUMOV, Rd: reg(), Rn: vreg(), Idx: rng.Intn(2)}
	case 19:
		return Instr{Op: OpINS, Rd: vreg(), Rn: reg(), Idx: rng.Intn(2)}
	default:
		return Instr{Op: OpNOP}
	}
}

func TestInterpreterMatchesReferenceOnRandomPrograms(t *testing.T) {
	for trial := 0; trial < 50; trial++ {
		rng := xrand.New(uint64(trial) + 999)
		const progLen = 400
		prog := make([]Instr, 0, progLen+1)
		for i := 0; i < progLen; i++ {
			prog = append(prog, randInstr(rng))
		}
		prog = append(prog, Instr{Op: OpHLT})

		words := make([]uint32, len(prog))
		for i, in := range prog {
			words[i] = in.Encode()
		}
		cpu := newTestCPU(t, words)
		if _, err := cpu.Run(uint64(len(prog) + 10)); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}

		ref := &refState{}
		for _, in := range prog {
			// Round-trip through the encoding so both machines see the
			// same decoded form.
			refExec(ref, Decode(in.Encode()))
		}

		for i := 0; i < 31; i++ {
			if cpu.X(i) != ref.getX(i) {
				t.Fatalf("trial %d: X%d = %#x, ref %#x", trial, i, cpu.X(i), ref.getX(i))
			}
		}
		for i := 0; i < 32; i++ {
			if cpu.V(i) != ref.v[i] {
				t.Fatalf("trial %d: V%d = %#x, ref %#x", trial, i, cpu.V(i), ref.v[i])
			}
		}
		if cpu.Flags.N != ref.n || cpu.Flags.Z != ref.z || cpu.Flags.C != ref.c || cpu.Flags.V != ref.vf {
			t.Fatalf("trial %d: flags %+v, ref N%v Z%v C%v V%v", trial, cpu.Flags, ref.n, ref.z, ref.c, ref.vf)
		}
	}
}
