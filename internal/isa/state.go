package isa

// CPUState is the architectural flop state of one core — everything a
// snapshot must rewind that does not live in the SRAM-backed register
// file (registers ride along with the regfile array's own snapshot).
type CPUState struct {
	EL        int
	PC        uint64
	Flags     Flags
	Halted    bool
	HaltCode  int64
	Instret   uint64
	RAMData   uint64
	RAMStatus uint64
	SCRNS     uint64
	NSLocked  bool
}

// CaptureState returns the core's current flop state.
func (c *CPU) CaptureState() CPUState {
	return CPUState{
		EL:        c.EL,
		PC:        c.PC,
		Flags:     c.Flags,
		Halted:    c.Halted,
		HaltCode:  c.HaltCode,
		Instret:   c.Instret,
		RAMData:   c.ramData,
		RAMStatus: c.ramStatus,
		SCRNS:     c.scrNS,
		NSLocked:  c.NSLocked,
	}
}

// RestoreState rewinds the core's flop state to st.
func (c *CPU) RestoreState(st CPUState) {
	c.EL = st.EL
	c.PC = st.PC
	c.Flags = st.Flags
	c.Halted = st.Halted
	c.HaltCode = st.HaltCode
	c.Instret = st.Instret
	c.ramData = st.RAMData
	c.ramStatus = st.RAMStatus
	c.scrNS = st.SCRNS
	c.NSLocked = st.NSLocked
}
