package isa

// CPUState is the architectural flop state of one core — everything a
// snapshot must rewind that does not live in the SRAM-backed register
// file (registers ride along with the regfile array's own snapshot).
type CPUState struct {
	EL        int
	PC        uint64
	Flags     Flags
	Halted    bool
	HaltCode  int64
	Instret   uint64
	RAMData   uint64
	RAMStatus uint64
	SCRNS     uint64
	NSLocked  bool
	// Fault carries the attached fault injector and its captured state
	// (nil when no injector was attached at capture time), so glitched
	// trials fork from snapshots like everything else: a restore rebinds
	// the injector and rewinds its internals — trigger arming, pulse
	// position, and RNG stream included.
	Fault *faultSnap
	// Probe does the same for an attached trace probe: a restore
	// rebinds the capturer and rewinds its arena cursor and recorded
	// samples, so traced trials fork from snapshots too.
	Probe *probeSnap
}

// faultSnap pairs the injector reference with its opaque captured state.
type faultSnap struct {
	inj FaultInjector
	st  any
}

// probeSnap pairs the trace probe reference with its captured state.
type probeSnap struct {
	probe TraceProbe
	st    any
}

// CaptureState returns the core's current flop state.
func (c *CPU) CaptureState() CPUState {
	st := CPUState{
		EL:        c.EL,
		PC:        c.PC,
		Flags:     c.Flags,
		Halted:    c.Halted,
		HaltCode:  c.HaltCode,
		Instret:   c.Instret,
		RAMData:   c.ramData,
		RAMStatus: c.ramStatus,
		SCRNS:     c.scrNS,
		NSLocked:  c.NSLocked,
	}
	if c.Fault != nil {
		st.Fault = &faultSnap{inj: c.Fault, st: c.Fault.CaptureState()}
	}
	if c.Probe != nil {
		st.Probe = &probeSnap{probe: c.Probe, st: c.Probe.CaptureState()}
	}
	return st
}

// RestoreState rewinds the core's flop state to st.
func (c *CPU) RestoreState(st CPUState) {
	c.EL = st.EL
	c.PC = st.PC
	c.Flags = st.Flags
	c.Halted = st.Halted
	c.HaltCode = st.HaltCode
	c.Instret = st.Instret
	c.ramData = st.RAMData
	c.ramStatus = st.RAMStatus
	c.scrNS = st.SCRNS
	c.NSLocked = st.NSLocked
	if st.Fault != nil {
		c.Fault = st.Fault.inj
		c.Fault.RestoreState(st.Fault.st)
	} else {
		c.Fault = nil
	}
	if st.Probe != nil {
		// RestoreState rebinds the capturer's sink attachments (this
		// core's Sink included) to match the captured arm state.
		c.Probe = st.Probe.probe
		c.Probe.RestoreState(st.Probe.st)
	} else {
		c.Probe = nil
		c.Sink = nil
	}
}
