package isa

import (
	"fmt"
	"strings"
)

// Disassemble renders a decoded instruction in assembler syntax. The
// output round-trips through Assemble for every encodable instruction.
func Disassemble(in Instr) string {
	x := func(r int) string {
		if r == XZR {
			return "XZR"
		}
		return fmt.Sprintf("X%d", r)
	}
	v := func(r int) string { return fmt.Sprintf("V%d", r) }
	switch in.Op {
	case OpMOVZ, OpMOVK, OpMOVN:
		name := map[Op]string{OpMOVZ: "MOVZ", OpMOVK: "MOVK", OpMOVN: "MOVN"}[in.Op]
		if in.Hw == 0 {
			return fmt.Sprintf("%s %s, #%#x", name, x(in.Rd), in.Imm)
		}
		return fmt.Sprintf("%s %s, #%#x, LSL #%d", name, x(in.Rd), in.Imm, in.Hw*16)
	case OpADD, OpSUB, OpAND, OpORR, OpEOR, OpLSLV, OpLSRV, OpMUL, OpSUBS, OpADDS:
		name := map[Op]string{
			OpADD: "ADD", OpSUB: "SUB", OpAND: "AND", OpORR: "ORR", OpEOR: "EOR",
			OpLSLV: "LSL", OpLSRV: "LSR", OpMUL: "MUL", OpSUBS: "SUBS", OpADDS: "ADDS",
		}[in.Op]
		return fmt.Sprintf("%s %s, %s, %s", name, x(in.Rd), x(in.Rn), x(in.Rm))
	case OpVEOR:
		return fmt.Sprintf("VEOR %s, %s, %s", v(in.Rd), v(in.Rn), v(in.Rm))
	case OpADDI, OpSUBI, OpSUBSI:
		name := map[Op]string{OpADDI: "ADDI", OpSUBI: "SUBI", OpSUBSI: "SUBSI"}[in.Op]
		return fmt.Sprintf("%s %s, %s, #%d", name, x(in.Rd), x(in.Rn), in.Imm)
	case OpLDR, OpSTR, OpLDRW, OpSTRW, OpLDRB, OpSTRB:
		name := map[Op]string{
			OpLDR: "LDR", OpSTR: "STR", OpLDRW: "LDRW", OpSTRW: "STRW",
			OpLDRB: "LDRB", OpSTRB: "STRB",
		}[in.Op]
		if in.Imm == 0 {
			return fmt.Sprintf("%s %s, [%s]", name, x(in.Rd), x(in.Rn))
		}
		return fmt.Sprintf("%s %s, [%s, #%d]", name, x(in.Rd), x(in.Rn), in.Imm)
	case OpVLDR, OpVSTR:
		name := map[Op]string{OpVLDR: "VLDR", OpVSTR: "VSTR"}[in.Op]
		if in.Imm == 0 {
			return fmt.Sprintf("%s %s, [%s]", name, v(in.Rd), x(in.Rn))
		}
		return fmt.Sprintf("%s %s, [%s, #%d]", name, v(in.Rd), x(in.Rn), in.Imm)
	case OpB:
		return fmt.Sprintf("B .%+d", in.Imm)
	case OpBL:
		return fmt.Sprintf("BL .%+d", in.Imm)
	case OpBCond:
		return fmt.Sprintf("B.%s .%+d", in.Cond, in.Imm)
	case OpCBZ:
		return fmt.Sprintf("CBZ %s, .%+d", x(in.Rd), in.Imm)
	case OpCBNZ:
		return fmt.Sprintf("CBNZ %s, .%+d", x(in.Rd), in.Imm)
	case OpRET:
		if in.Rn == 30 {
			return "RET"
		}
		return fmt.Sprintf("RET %s", x(in.Rn))
	case OpNOP:
		return "NOP"
	case OpHLT:
		return fmt.Sprintf("HLT #%d", in.Imm)
	case OpDSB:
		return "DSB"
	case OpISB:
		return "ISB"
	case OpMRS:
		return fmt.Sprintf("MRS %s, %s", x(in.Rd), SysRegName(in.Sys))
	case OpMSR:
		return fmt.Sprintf("MSR %s, %s", SysRegName(in.Sys), x(in.Rd))
	case OpDCZVA:
		return fmt.Sprintf("DC ZVA, %s", x(in.Rd))
	case OpDCCIVAC:
		return fmt.Sprintf("DC CIVAC, %s", x(in.Rd))
	case OpICIALLU:
		return "IC IALLU"
	case OpVMOVI:
		return fmt.Sprintf("VMOVI %s, #%#x", v(in.Rd), in.Imm)
	case OpUMOV:
		return fmt.Sprintf("UMOV %s, %s, #%d", x(in.Rd), v(in.Rn), in.Idx)
	case OpINS:
		return fmt.Sprintf("INS %s, %s, #%d", v(in.Rd), x(in.Rn), in.Idx)
	default:
		return fmt.Sprintf(".word %#08x", uint32(in.Op)<<opShift)
	}
}

// DisassembleWord decodes and renders one machine word.
func DisassembleWord(word uint32) string {
	in := Decode(word)
	if in.Op == OpInvalid {
		return fmt.Sprintf(".word %#08x", word)
	}
	return Disassemble(in)
}

// DumpProgram renders a code image as an address-annotated listing,
// useful for debugging extraction payloads.
func DumpProgram(base uint64, words []uint32) string {
	var b strings.Builder
	for i, w := range words {
		fmt.Fprintf(&b, "%#08x: %08x  %s\n", base+uint64(i)*4, w, DisassembleWord(w))
	}
	return b.String()
}
