package isa

import "math/bits"

// TraceSink is the sample buffer an armed power-trace capturer shares
// with the hardware it taps: the core's retire path, the register
// file's writeback path, and the SoC interconnect all write switching
// activity straight into the sink's fields. It is a concrete struct —
// not an interface — deliberately: the armed emit path runs once per
// retired instruction, and direct, inlinable field arithmetic is what
// keeps the armed step overhead inside its budget. The capturer in
// internal/trace owns the sink and attaches a pointer to it at each
// tap point on Arm; a detached (nil) sink costs each tap one nil
// check, the same discipline as the fault hook.
//
// All activity terms are integer popcounts accumulated exactly; the
// single float32 rounding happens in Retire, in one fixed order, which
// is what makes trace bytes reproducible across architectures and
// GOMAXPROCS settings.
type TraceSink struct {
	// BusAct accumulates the cycle's switching activity (GPR writeback
	// toggles via RegWrite, interconnect traffic via BusAccess) since
	// the last retired instruction; the next Retire drains it into that
	// instruction's sample.
	BusAct int
	// LastAddr is the previous bus access address — the reference for
	// address-bus toggle counting.
	LastAddr uint64
	// Static is the static-draw term added to every sample, computed by
	// the capturer from the rail voltages at Arm time.
	Static float32
	// Buf is the preallocated sample arena; N is the cursor. Emission
	// past the arena end drops samples rather than growing: capture
	// windows are sized by the caller, and a bounded arena is what
	// keeps the armed hot path allocation-free.
	N   int
	Buf []float32
}

// RegWrite counts the flop toggles of a GPR writeback — the Hamming
// distance between the dying and the incoming value.
//
//voltvet:hotpath
func (s *TraceSink) RegWrite(old, next uint64) {
	s.BusAct += bits.OnesCount64(old ^ next)
}

// BusAccess counts interconnect activity: address-bus toggles against
// the previous access, the Hamming weight of write data driven onto
// the bus, and a per-byte transfer cost.
//
//voltvet:hotpath
func (s *TraceSink) BusAccess(addr uint64, size int, write bool, wdata uint64) {
	act := bits.OnesCount64(addr ^ s.LastAddr)
	s.LastAddr = addr
	if write {
		act += bits.OnesCount64(wdata)
	}
	s.BusAct += act + size
}

// Retire drains the accumulated activity into one sample — the sample
// boundary is instruction retirement, one sample per core-clock cycle.
//
//voltvet:hotpath
func (s *TraceSink) Retire() {
	act := s.BusAct
	s.BusAct = 0
	v := float32(act) + s.Static
	if s.N < len(s.Buf) {
		s.Buf[s.N] = v
		s.N++
	}
}

// TraceProbe is the snapshot-composition handle of an attached trace
// capturer, the read-only sibling of FaultInjector. The hot sample
// path does not go through this interface — emission is direct field
// arithmetic on the shared TraceSink — but the capturer attaches
// itself here so its arena cursor and recorded samples ride along with
// CPUState and therefore with soc.Snapshot, letting traced trials fork
// from copy-on-write snapshots like glitched ones.
//
// An attached capturer is architecturally invisible (same PC stream,
// same Instret, same SRAM contents, to the bit), and the armed emit
// path must stay allocation-free — it is pinned by voltvet
// //voltvet:hotpath markers and a dynamic AllocsPerRun gate in
// internal/trace.
type TraceProbe interface {
	// CaptureState returns an opaque snapshot of the probe's internal
	// state (arm flag, sample cursor, recorded samples); RestoreState
	// rewinds to it and rebinds the probe's sink attachments.
	CaptureState() any
	RestoreState(st any)
}

// execProbed is exec with the retire tap. Faulting instructions emit
// no sample — the trace records work the core actually committed.
//
//voltvet:hotpath
func (c *CPU) execProbed(in Instr, word uint32) error {
	err := c.exec(in, word)
	if err == nil {
		c.Sink.Retire()
	}
	return err
}
