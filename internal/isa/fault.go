package isa

// Fault injection: the ISA-level half of the voltage-glitch engine
// (internal/glitch). A FaultInjector attached to a CPU sees every
// instruction at the top of ExecDecoded — before any architectural
// effect — and may replace its execution with one of three fault modes,
// the instruction-level outcomes the glitching literature attributes to
// rail-induced timing violations:
//
//   - FaultSkip: the instruction retires with no effect at all (its
//     result latch misses the shortened cycle);
//   - FaultCorrupt: the instruction executes, then one bit of its
//     destination register flips (a marginal result latch);
//   - FaultWrongBranch: a branch resolves to the opposite decision (the
//     condition evaluation misses timing).
//
// The injector is consulted through a single nil check, so a CPU with
// no injector attached pays one predictable branch on the hot path and
// nothing else — the disarmed glitcher is free.

// FaultKind classifies one injected fault.
type FaultKind uint8

const (
	// FaultNone means the instruction executes normally.
	FaultNone FaultKind = iota
	// FaultSkip retires the instruction with no architectural effect.
	FaultSkip
	// FaultCorrupt executes the instruction, then flips one bit of its
	// destination register (no effect on ops without a GPR destination).
	FaultCorrupt
	// FaultWrongBranch inverts a branch decision: a conditional branch
	// resolves against its condition, an unconditional redirect falls
	// through. Non-branches execute normally.
	FaultWrongBranch
)

func (k FaultKind) String() string {
	switch k {
	case FaultNone:
		return "none"
	case FaultSkip:
		return "skip"
	case FaultCorrupt:
		return "corrupt"
	case FaultWrongBranch:
		return "wrong-branch"
	default:
		return "unknown"
	}
}

// FaultDecision is an injector's verdict for one instruction.
type FaultDecision struct {
	Kind FaultKind
	// Bit is the destination-register bit to flip for FaultCorrupt
	// (taken mod 64).
	Bit uint8
}

// FaultInjector decides, per instruction, whether execution faults.
// Implementations must be deterministic functions of their own captured
// state: CaptureState/RestoreState compose the injector into CPUState
// (and so into soc.Snapshot), letting glitched trials fork from
// copy-on-write snapshots like everything else.
type FaultInjector interface {
	// OnInstr is called before in executes, with the CPU's architectural
	// state still pre-instruction (PC at in, Instret counting retired
	// predecessors). It may mutate external state (e.g. drive a power
	// domain) but not the CPU.
	OnInstr(c *CPU, in Instr) FaultDecision
	// CaptureState returns an opaque rewindable copy of the injector's
	// internal state.
	CaptureState() any
	// RestoreState rewinds to a state from CaptureState. A nil argument
	// resets the injector to its disarmed baseline.
	RestoreState(st any)
}

// HasGPRDest reports whether op writes a general-purpose destination
// register (Rd) — the ops FaultCorrupt can visibly disturb.
//voltvet:hotpath
func HasGPRDest(op Op) bool {
	switch op {
	case OpMOVZ, OpMOVK, OpMOVN,
		OpADD, OpSUB, OpAND, OpORR, OpEOR, OpLSLV, OpLSRV, OpMUL,
		OpSUBS, OpADDS, OpADDI, OpSUBI, OpSUBSI,
		OpLDR, OpLDRW, OpLDRB, OpMRS, OpUMOV:
		return true
	}
	return false
}

// IsBranch reports whether op can redirect the PC — the ops
// FaultWrongBranch can invert.
//voltvet:hotpath
func IsBranch(op Op) bool {
	switch op {
	case OpB, OpBL, OpBCond, OpCBZ, OpCBNZ, OpRET:
		return true
	}
	return false
}

// execFaulted retires one instruction under an injected fault. Every
// path retires exactly one instruction (PC advances, Instret++), so a
// faulted stream stays architecturally well-formed — the corruption is
// in the results, not the pipeline model.
//voltvet:hotpath
func (c *CPU) execFaulted(in Instr, word uint32, d FaultDecision) error {
	switch d.Kind {
	case FaultSkip:
		c.PC += 4
		c.Instret++
		return nil
	case FaultCorrupt:
		if err := c.exec(in, word); err != nil {
			return err
		}
		if HasGPRDest(in.Op) {
			c.SetX(in.Rd, c.X(in.Rd)^(uint64(1)<<(d.Bit&63)))
		}
		return nil
	case FaultWrongBranch:
		next := c.PC + 4
		switch in.Op {
		case OpBCond:
			if !c.condHolds(in.Cond) {
				next = c.PC + uint64(in.Imm*4)
			}
		case OpCBZ:
			if c.X(in.Rd) != 0 {
				next = c.PC + uint64(in.Imm*4)
			}
		case OpCBNZ:
			if c.X(in.Rd) == 0 {
				next = c.PC + uint64(in.Imm*4)
			}
		case OpBL:
			// The fault hits the redirect, not the datapath: the link
			// register still latches before the branch falls through.
			c.SetX(30, c.PC+4)
		case OpB, OpRET:
			// Unconditional redirect suppressed: fall through.
		default:
			return c.exec(in, word)
		}
		c.PC = next
		c.Instret++
		return nil
	}
	return c.exec(in, word)
}
