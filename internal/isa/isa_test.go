package isa

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTripSamples(t *testing.T) {
	samples := []Instr{
		{Op: OpMOVZ, Rd: 3, Imm: 0xBEEF, Hw: 2},
		{Op: OpMOVK, Rd: 30, Imm: 0xFFFF, Hw: 3},
		{Op: OpMOVN, Rd: 0, Imm: 0},
		{Op: OpADD, Rd: 1, Rn: 2, Rm: 3},
		{Op: OpSUBS, Rd: XZR, Rn: 5, Rm: 6},
		{Op: OpADDI, Rd: 7, Rn: 8, Imm: 0xFFF},
		{Op: OpLDR, Rd: 9, Rn: 10, Imm: 8 * 0xFFF},
		{Op: OpSTRB, Rd: 11, Rn: 12, Imm: 0x7F},
		{Op: OpB, Imm: -(1 << 25)},
		{Op: OpBL, Imm: 1<<25 - 1},
		{Op: OpBCond, Cond: LE, Imm: -5},
		{Op: OpCBZ, Rd: 13, Imm: 100},
		{Op: OpCBNZ, Rd: 14, Imm: -100},
		{Op: OpRET, Rn: 30},
		{Op: OpNOP},
		{Op: OpHLT, Imm: 42},
		{Op: OpDSB},
		{Op: OpISB},
		{Op: OpMRS, Rd: 15, Sys: SysRAMDATA0},
		{Op: OpMSR, Rd: 16, Sys: SysRAMINDEX},
		{Op: OpDCZVA, Rd: 17},
		{Op: OpDCCIVAC, Rd: 18},
		{Op: OpICIALLU},
		{Op: OpVMOVI, Rd: 19, Imm: 0xAA},
		{Op: OpVLDR, Rd: 20, Rn: 21, Imm: 16 * 5},
		{Op: OpVSTR, Rd: 22, Rn: 23, Imm: 0},
		{Op: OpVEOR, Rd: 24, Rn: 25, Rm: 26},
		{Op: OpUMOV, Rd: 27, Rn: 28, Idx: 1},
		{Op: OpINS, Rd: 29, Rn: 30, Idx: 0},
	}
	for _, in := range samples {
		got := Decode(in.Encode())
		if got != in {
			t.Errorf("round trip failed:\n in  %+v\n out %+v", in, got)
		}
	}
}

func TestEncodeRejectsOutOfRange(t *testing.T) {
	bad := []Instr{
		{Op: OpMOVZ, Rd: 0, Imm: 0x10000},
		{Op: OpMOVZ, Rd: 0, Imm: 1, Hw: 4},
		{Op: OpADDI, Rd: 0, Rn: 0, Imm: 0x1000},
		{Op: OpLDR, Rd: 0, Rn: 0, Imm: 7}, // unaligned
		{Op: OpB, Imm: 1 << 25},
		{Op: OpVMOVI, Rd: 0, Imm: 256},
		{Op: OpUMOV, Rd: 0, Rn: 0, Idx: 2},
	}
	for _, in := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Encode(%+v) should panic", in)
				}
			}()
			in.Encode()
		}()
	}
}

// Property: for arbitrary MOVZ-shaped fields, encode/decode round-trips.
func TestEncodeDecodeMOVZProperty(t *testing.T) {
	if err := quick.Check(func(rd uint8, imm uint16, hw uint8) bool {
		in := Instr{Op: OpMOVZ, Rd: int(rd % 32), Imm: int64(imm), Hw: int(hw % 4)}
		return Decode(in.Encode()) == in
	}, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: branch displacements round-trip with sign extension.
func TestEncodeDecodeBranchProperty(t *testing.T) {
	if err := quick.Check(func(d int32) bool {
		disp := int64(d % (1 << 25))
		in := Instr{Op: OpB, Imm: disp}
		return Decode(in.Encode()) == in
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeInvalid(t *testing.T) {
	// opcode 0x3F is unassigned
	if in := Decode(0xFFFFFFFF); in.Op != OpInvalid {
		t.Fatalf("expected OpInvalid, got %#x", uint32(in.Op))
	}
}

func TestDisassembleAssembleRoundTrip(t *testing.T) {
	program := []Instr{
		{Op: OpMOVZ, Rd: 0, Imm: 0x12, Hw: 1},
		{Op: OpMOVK, Rd: 0, Imm: 0x34},
		{Op: OpADD, Rd: 1, Rn: 0, Rm: 2},
		{Op: OpADDI, Rd: 1, Rn: 1, Imm: 8},
		{Op: OpLDR, Rd: 2, Rn: 1, Imm: 16},
		{Op: OpSTR, Rd: 2, Rn: 1},
		{Op: OpRET, Rn: 30},
		{Op: OpNOP},
		{Op: OpHLT, Imm: 3},
		{Op: OpDSB},
		{Op: OpISB},
		{Op: OpMRS, Rd: 5, Sys: SysRAMSTATUS},
		{Op: OpMSR, Rd: 6, Sys: SysRAMINDEX},
		{Op: OpDCZVA, Rd: 7},
		{Op: OpDCCIVAC, Rd: 8},
		{Op: OpICIALLU},
		{Op: OpVMOVI, Rd: 9, Imm: 0xFF},
		{Op: OpVLDR, Rd: 10, Rn: 11, Imm: 32},
		{Op: OpVSTR, Rd: 12, Rn: 13},
		{Op: OpVEOR, Rd: 1, Rn: 2, Rm: 3},
		{Op: OpUMOV, Rd: 14, Rn: 15, Idx: 1},
		{Op: OpINS, Rd: 16, Rn: 17, Idx: 0},
		{Op: OpSUBS, Rd: XZR, Rn: 1, Rm: 2},
	}
	var src strings.Builder
	for _, in := range program {
		src.WriteString(Disassemble(in))
		src.WriteByte('\n')
	}
	words, err := Assemble(0, src.String())
	if err != nil {
		t.Fatalf("assembling disassembly: %v\nsource:\n%s", err, src.String())
	}
	if len(words) != len(program) {
		t.Fatalf("got %d words, want %d", len(words), len(program))
	}
	for i, w := range words {
		if want := program[i].Encode(); w != want {
			t.Errorf("word %d: %#08x != %#08x (%s)", i, w, want, Disassemble(program[i]))
		}
	}
}

func TestAssembleLabelsAndBranches(t *testing.T) {
	src := `
        MOVZ X0, #5
loop:   SUBI X0, X0, #1
        CBNZ X0, loop
        HLT #0
`
	words, err := Assemble(0x1000, src)
	if err != nil {
		t.Fatal(err)
	}
	if len(words) != 4 {
		t.Fatalf("want 4 words, got %d", len(words))
	}
	cb := Decode(words[2])
	if cb.Op != OpCBNZ || cb.Imm != -1 {
		t.Fatalf("CBNZ displacement = %d, want -1", cb.Imm)
	}
}

func TestAssembleLDIMM(t *testing.T) {
	words, err := Assemble(0, "LDIMM X3, #0x123456789ABCDEF0\nHLT #0\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(words) != 5 {
		t.Fatalf("LDIMM should expand to 4 words, got %d total", len(words))
	}
	cpu := newTestCPU(t, words)
	if _, err := cpu.Run(10); err != nil {
		t.Fatal(err)
	}
	if got := cpu.X(3); got != 0x123456789ABCDEF0 {
		t.Fatalf("X3 = %#x", got)
	}
}

func TestAssembleLDIMMLabel(t *testing.T) {
	src := `
        LDIMM X0, data
        HLT #0
data:   .word 0xDEADBEEF
`
	words, err := Assemble(0x80000, src)
	if err != nil {
		t.Fatal(err)
	}
	// data label sits after 4 (LDIMM) + 1 (HLT) words
	wantAddr := uint64(0x80000 + 5*4)
	cpu := newTestCPU(t, words)
	cpu.PC = 0x80000
	if _, err := cpu.Run(10); err != nil {
		t.Fatal(err)
	}
	if got := cpu.X(0); got != wantAddr {
		t.Fatalf("X0 = %#x, want %#x", got, wantAddr)
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []string{
		"FOO X1, X2",
		"MOVZ X1",
		"MOVZ X32, #1",
		"MOVZ X1, #0x10000",
		"B nowhere",
		"LDR X1, [X2, #7]",   // unaligned
		"ADDI X1, X2, #5000", // out of range
		"MRS X1, NOSUCHREG",
		"dup: NOP\ndup: NOP", // duplicate label
		"MOVZ X0, #1, LSR #16",
		"UMOV X0, V1, #2",
	}
	for _, src := range cases {
		if _, err := Assemble(0, src); err == nil {
			t.Errorf("Assemble(%q) should fail", src)
		}
	}
}

func TestAssembleCommentsAndLabelsOnSameLine(t *testing.T) {
	src := "start: NOP ; trailing comment\n// full line comment\nB start\n"
	words, err := Assemble(0, src)
	if err != nil {
		t.Fatal(err)
	}
	if len(words) != 2 {
		t.Fatalf("want 2 words, got %d", len(words))
	}
	if b := Decode(words[1]); b.Imm != -1 {
		t.Fatalf("B displacement = %d", b.Imm)
	}
}

func TestAsmErrorHasLineNumber(t *testing.T) {
	_, err := Assemble(0, "NOP\nNOP\nBADOP\n")
	ae, ok := err.(*AsmError)
	if !ok {
		t.Fatalf("expected *AsmError, got %T: %v", err, err)
	}
	if ae.Line != 3 {
		t.Fatalf("error line = %d, want 3", ae.Line)
	}
}

func TestRAMIndexPackUnpack(t *testing.T) {
	if err := quick.Check(func(way uint16, idx uint32) bool {
		req := RAMIndexRequest(RAMIDL1DData, int(way), int(idx))
		id, w, i := UnpackRAMIndex(req)
		return id == RAMIDL1DData && w == int(way) && i == int(idx)
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDumpProgram(t *testing.T) {
	out := DumpProgram(0x1000, []uint32{NOPWord, Instr{Op: OpHLT, Imm: 1}.Encode()})
	if !strings.Contains(out, "0x00001000") {
		t.Fatalf("listing missing base address:\n%s", out)
	}
	if !strings.Contains(out, "NOP") || !strings.Contains(out, "HLT") {
		t.Fatalf("listing missing mnemonics:\n%s", out)
	}
}
