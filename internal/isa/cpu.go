package isa

import "fmt"

// Bus is the CPU's memory port. In an SoC the bus routes accesses through
// the L1 caches, L2, and on to DRAM or iRAM; the core index lets shared
// levels attribute accesses correctly.
type Bus interface {
	// FetchInstr reads a 32-bit instruction word through the i-side.
	FetchInstr(core int, addr uint64) (uint32, error)
	// Load reads size bytes (1, 4, or 8) through the d-side, zero-extended.
	Load(core int, addr uint64, size int) (uint64, error)
	// Store writes the low size bytes of v through the d-side.
	Store(core int, addr uint64, size int, v uint64) error
	// Load128 reads 16 bytes (for VLDR), little-endian pair {lo, hi}.
	Load128(core int, addr uint64) ([2]uint64, error)
	// Store128 writes 16 bytes (for VSTR).
	Store128(core int, addr uint64, v [2]uint64) error
}

// DecodedBus is an optional Bus extension: a bus that can serve fetches
// as already-decoded instructions from a predecode cache. Implementations
// must be architecturally invisible — a FetchDecoded call has exactly the
// side effects and result of FetchInstr followed by Decode, just without
// re-decoding (or even re-reading the RAMs) on the hot path. The SoC
// implements it with a generation-checked predecoded i-stream.
type DecodedBus interface {
	// FetchDecoded returns the decoded instruction and the raw word at
	// addr (the word feeds the undefined-instruction diagnostics).
	FetchDecoded(core int, addr uint64) (Instr, uint32, error)
}

// SysOps provides the system operations that reach beyond the register
// file: cache maintenance and the RAMINDEX debug path. The SoC implements
// this against its real cache models.
type SysOps interface {
	// DCZVA zeroes the cache line containing addr (data RAM write — the
	// only architectural way to reset L1 data contents, §5.2.4).
	DCZVA(core int, addr uint64) error
	// DCCIVAC cleans and invalidates the line containing addr by virtual
	// address (data survives in the RAM; only state bits change).
	DCCIVAC(core int, addr uint64) error
	// ICIALLU invalidates the entire i-cache (again: state bits only).
	ICIALLU(core int)
	// RAMIndexRead services an MSR RAMINDEX request. el is the current
	// exception level. fault is true when the access is denied (wrong EL,
	// TrustZone-protected line).
	RAMIndexRead(core int, req uint64, el int) (data uint64, fault bool)
	// Barrier drains outstanding accesses (DSB). The interpreter is
	// in-order so this is semantically a no-op, but payloads include the
	// barriers the paper's §6.1 requires and the SoC counts them.
	Barrier(core int)
}

// RegBacking is the storage behind the architectural register file. The
// SoC backs it with an SRAM array in the core power domain so that
// register contents obey the same retention physics as caches — the
// mechanism behind the §7.2 vector-register attack.
type RegBacking interface {
	ReadX(i int) uint64
	WriteX(i int, v uint64)
	ReadV(i int) [2]uint64
	WriteV(i int, v [2]uint64)
}

// PlainRegs is a RegBacking held in ordinary memory, for tests and tools
// that do not need retention physics.
type PlainRegs struct {
	X [31]uint64
	V [32][2]uint64
}

// ReadX implements RegBacking.
//voltvet:hotpath
func (p *PlainRegs) ReadX(i int) uint64 { return p.X[i] }

// WriteX implements RegBacking.
//voltvet:hotpath
func (p *PlainRegs) WriteX(i int, v uint64) { p.X[i] = v }

// ReadV implements RegBacking.
//voltvet:hotpath
func (p *PlainRegs) ReadV(i int) [2]uint64 { return p.V[i] }

// WriteV implements RegBacking.
//voltvet:hotpath
func (p *PlainRegs) WriteV(i int, v [2]uint64) { p.V[i] = v }

// Flags is the NZCV condition flag set.
type Flags struct {
	N, Z, C, V bool
}

// CPU interprets VBA64 instructions. It is deliberately simple: in-order,
// one instruction per Step, no speculation. Microarchitectural timing is
// irrelevant to the attack; what matters is which SRAM cells hold what.
type CPU struct {
	// ID is the core number returned by MRS COREID.
	ID int
	// EL is the current exception level (0–3). Bare-metal payloads boot
	// at EL3, matching the paper's requirement for RAMINDEX access.
	EL int

	PC      uint64
	Flags   Flags
	Regs    RegBacking
	BusPort Bus
	Sys     SysOps
	// decBus is BusPort's DecodedBus view when it has one, captured once
	// at construction so Step avoids a per-instruction type assertion.
	decBus DecodedBus

	// Fault, when non-nil, is consulted before every instruction and may
	// replace its execution with an injected fault (see FaultInjector).
	// Nil for a CPU with no glitcher attached: the hot path pays exactly
	// one nil check.
	Fault FaultInjector

	// Sink, when non-nil, receives one power sample per retired
	// instruction (see TraceSink) — the hot half of the power-trace
	// capture tap. Nil for a CPU with no capturer armed: like Fault,
	// the disarmed cost is one nil check. Probe is the matching cold
	// half — the capturer's snapshot handle — and the two are always
	// attached and detached together.
	//voltvet:nosnap tap binding rebound by RestoreState from the live capturer (nil when disarmed); not recorded state
	Sink  *TraceSink
	Probe TraceProbe

	// Halted is set by HLT; HaltCode carries its immediate.
	Halted   bool
	HaltCode int64
	// Instret counts retired instructions.
	Instret uint64

	// ramData/ramStatus latch the result of the last RAMINDEX operation,
	// read back through MRS RAMDATA0/RAMSTATUS.
	ramData   uint64
	ramStatus uint64
	// scrNS is the SCR_NS system register (TrustZone non-secure bit).
	scrNS uint64
	// NSLocked pins the core in the non-secure state: SCR_NS reads as 1
	// and writes fault. A TrustZone-enforcing boot chain sets this before
	// handing control to externally supplied code (§8).
	NSLocked bool
}

// NewCPU builds a core with the given backing stores. A bus that also
// implements DecodedBus gets its predecoded fetch path used by Step.
func NewCPU(id int, regs RegBacking, bus Bus, sys SysOps) *CPU {
	c := &CPU{ID: id, EL: 3, Regs: regs, BusPort: bus, Sys: sys}
	if db, ok := bus.(DecodedBus); ok {
		c.decBus = db
	}
	return c
}

// Reset prepares the core to run from entry at EL3 with cleared flags.
// It does NOT clear the register backing store: register SRAM has no
// reset hardware (§5.2.4) — whatever the cells hold, the core boots with.
func (c *CPU) Reset(entry uint64) {
	c.PC = entry
	c.Flags = Flags{}
	c.EL = 3
	c.Halted = false
	c.HaltCode = 0
	c.ramData = 0
	c.ramStatus = 0
}

// X reads general-purpose register i (XZR reads as zero).
//voltvet:hotpath
func (c *CPU) X(i int) uint64 {
	if i == XZR {
		return 0
	}
	return c.Regs.ReadX(i) //voltvet:ignore VV-HOT006 pluggable regfile seam (PlainRegs vs the SoC-owned file); kept for probe instrumentation
}

// SetX writes general-purpose register i (writes to XZR are discarded).
//voltvet:hotpath
func (c *CPU) SetX(i int, v uint64) {
	if i == XZR {
		return
	}
	c.Regs.WriteX(i, v) //voltvet:ignore VV-HOT006 pluggable regfile seam (PlainRegs vs the SoC-owned file); kept for probe instrumentation
}

// Secure reports whether the core is in the TrustZone secure state
// (SCR_NS == 0 and not locked out of it).
//voltvet:hotpath
func (c *CPU) Secure() bool { return !c.NSLocked && c.scrNS == 0 }

// V reads vector register i.
//voltvet:hotpath
func (c *CPU) V(i int) [2]uint64 { return c.Regs.ReadV(i) } //voltvet:ignore VV-HOT006 pluggable regfile seam (PlainRegs vs the SoC-owned file); kept for probe instrumentation

// SetV writes vector register i.
//voltvet:hotpath
func (c *CPU) SetV(i int, v [2]uint64) { c.Regs.WriteV(i, v) } //voltvet:ignore VV-HOT006 pluggable regfile seam (PlainRegs vs the SoC-owned file); kept for probe instrumentation

// UndefinedError reports execution of an undecodable word — e.g. a core
// branching into uninitialized SRAM.
type UndefinedError struct {
	PC   uint64
	Word uint32
}

func (e *UndefinedError) Error() string {
	return fmt.Sprintf("isa: undefined instruction %#08x at PC %#x", e.Word, e.PC)
}

//voltvet:hotpath
func (c *CPU) condHolds(cond Cond) bool {
	f := c.Flags
	switch cond {
	case EQ:
		return f.Z
	case NE:
		return !f.Z
	case LT:
		return f.N != f.V
	case GE:
		return f.N == f.V
	case LO:
		return !f.C
	case HS:
		return f.C
	case GT:
		return !f.Z && f.N == f.V
	case LE:
		return f.Z || f.N != f.V
	default:
		return false
	}
}

//voltvet:hotpath
func (c *CPU) setFlagsAdd(a, b uint64) uint64 {
	r := a + b
	c.Flags.N = r>>63 == 1
	c.Flags.Z = r == 0
	c.Flags.C = r < a // unsigned carry out
	c.Flags.V = (a>>63 == b>>63) && (r>>63 != a>>63)
	return r
}

//voltvet:hotpath
func (c *CPU) setFlagsSub(a, b uint64) uint64 {
	r := a - b
	c.Flags.N = r>>63 == 1
	c.Flags.Z = r == 0
	c.Flags.C = a >= b // no borrow
	c.Flags.V = (a>>63 != b>>63) && (r>>63 != a>>63)
	return r
}

// Step fetches, decodes and executes one instruction. It returns an error
// on memory faults or undefined instructions; the core keeps its state so
// callers can inspect the failure.
//
//voltvet:hotpath root
func (c *CPU) Step() error {
	if c.Halted {
		return nil
	}
	var in Instr
	var word uint32
	if c.decBus != nil {
		var err error
		in, word, err = c.decBus.FetchDecoded(c.ID, c.PC) //voltvet:ignore VV-HOT006 CPU-to-SoC bus seam: the ISA layer cannot import soc without an import cycle; resolves to *soc.SoC in every build
		if err != nil {
			return fmt.Errorf("fetch at PC %#x: %w", c.PC, err)
		}
	} else {
		w, err := c.BusPort.FetchInstr(c.ID, c.PC) //voltvet:ignore VV-HOT006 CPU-to-SoC bus seam: the ISA layer cannot import soc without an import cycle; resolves to *soc.SoC in every build
		if err != nil {
			return fmt.Errorf("fetch at PC %#x: %w", c.PC, err)
		}
		word = w
		in = Decode(word)
	}
	return c.ExecDecoded(in, word)
}

// ExecDecoded executes one already-fetched-and-decoded instruction: the
// execute-and-retire half of Step, split out so a dispatcher that serves
// decoded instructions from its own cache (the SoC's superblock runner)
// can drive the core without a per-instruction fetch call. The word
// feeds the undefined-instruction diagnostics, exactly as in Step.
// Callers are responsible for the Halted check Step performs.
//
//voltvet:hotpath
func (c *CPU) ExecDecoded(in Instr, word uint32) error {
	if c.Fault != nil {
		if d := c.Fault.OnInstr(c, in); d.Kind != FaultNone { //voltvet:ignore VV-HOT006 per-instruction fault hook; a direct glitch dependency would cycle the import graph
			return c.execFaulted(in, word, d)
		}
	}
	if c.Sink != nil {
		return c.execProbed(in, word)
	}
	return c.exec(in, word)
}

// exec is the fault-free execute-and-retire body behind ExecDecoded.
//
//voltvet:hotpath
func (c *CPU) exec(in Instr, word uint32) error {
	next := c.PC + 4

	switch in.Op {
	case OpMOVZ:
		c.SetX(in.Rd, uint64(in.Imm)<<(16*uint(in.Hw)))
	case OpMOVK:
		mask := uint64(0xFFFF) << (16 * uint(in.Hw))
		c.SetX(in.Rd, c.X(in.Rd)&^mask|uint64(in.Imm)<<(16*uint(in.Hw)))
	case OpMOVN:
		c.SetX(in.Rd, ^(uint64(in.Imm) << (16 * uint(in.Hw))))
	case OpADD:
		c.SetX(in.Rd, c.X(in.Rn)+c.X(in.Rm))
	case OpSUB:
		c.SetX(in.Rd, c.X(in.Rn)-c.X(in.Rm))
	case OpAND:
		c.SetX(in.Rd, c.X(in.Rn)&c.X(in.Rm))
	case OpORR:
		c.SetX(in.Rd, c.X(in.Rn)|c.X(in.Rm))
	case OpEOR:
		c.SetX(in.Rd, c.X(in.Rn)^c.X(in.Rm))
	case OpLSLV:
		c.SetX(in.Rd, c.X(in.Rn)<<(c.X(in.Rm)&63))
	case OpLSRV:
		c.SetX(in.Rd, c.X(in.Rn)>>(c.X(in.Rm)&63))
	case OpMUL:
		c.SetX(in.Rd, c.X(in.Rn)*c.X(in.Rm))
	case OpSUBS:
		c.SetX(in.Rd, c.setFlagsSub(c.X(in.Rn), c.X(in.Rm)))
	case OpADDS:
		c.SetX(in.Rd, c.setFlagsAdd(c.X(in.Rn), c.X(in.Rm)))
	case OpADDI:
		c.SetX(in.Rd, c.X(in.Rn)+uint64(in.Imm))
	case OpSUBI:
		c.SetX(in.Rd, c.X(in.Rn)-uint64(in.Imm))
	case OpSUBSI:
		c.SetX(in.Rd, c.setFlagsSub(c.X(in.Rn), uint64(in.Imm)))
	case OpLDR, OpLDRW, OpLDRB:
		v, err := c.BusPort.Load(c.ID, c.X(in.Rn)+uint64(in.Imm), accessSize(in.Op)) //voltvet:ignore VV-HOT006 CPU-to-SoC bus seam: the ISA layer cannot import soc without an import cycle; resolves to *soc.SoC in every build
		if err != nil {
			return fmt.Errorf("load at PC %#x: %w", c.PC, err)
		}
		c.SetX(in.Rd, v)
	case OpSTR, OpSTRW, OpSTRB:
		if err := c.BusPort.Store(c.ID, c.X(in.Rn)+uint64(in.Imm), accessSize(in.Op), c.X(in.Rd)); err != nil { //voltvet:ignore VV-HOT006 CPU-to-SoC bus seam: the ISA layer cannot import soc without an import cycle; resolves to *soc.SoC in every build
			return fmt.Errorf("store at PC %#x: %w", c.PC, err)
		}
	case OpVLDR:
		v, err := c.BusPort.Load128(c.ID, c.X(in.Rn)+uint64(in.Imm)) //voltvet:ignore VV-HOT006 CPU-to-SoC bus seam: the ISA layer cannot import soc without an import cycle; resolves to *soc.SoC in every build
		if err != nil {
			return fmt.Errorf("vldr at PC %#x: %w", c.PC, err)
		}
		c.SetV(in.Rd, v)
	case OpVSTR:
		if err := c.BusPort.Store128(c.ID, c.X(in.Rn)+uint64(in.Imm), c.V(in.Rd)); err != nil { //voltvet:ignore VV-HOT006 CPU-to-SoC bus seam: the ISA layer cannot import soc without an import cycle; resolves to *soc.SoC in every build
			return fmt.Errorf("vstr at PC %#x: %w", c.PC, err)
		}
	case OpB:
		next = c.PC + uint64(in.Imm*4)
	case OpBL:
		c.SetX(30, c.PC+4)
		next = c.PC + uint64(in.Imm*4)
	case OpBCond:
		if c.condHolds(in.Cond) {
			next = c.PC + uint64(in.Imm*4)
		}
	case OpCBZ:
		if c.X(in.Rd) == 0 {
			next = c.PC + uint64(in.Imm*4)
		}
	case OpCBNZ:
		if c.X(in.Rd) != 0 {
			next = c.PC + uint64(in.Imm*4)
		}
	case OpRET:
		next = c.X(in.Rn)
	case OpNOP:
	case OpHLT:
		c.Halted = true
		c.HaltCode = in.Imm
	case OpDSB, OpISB:
		if c.Sys != nil {
			c.Sys.Barrier(c.ID) //voltvet:ignore VV-HOT006 CPU-to-SoC bus seam: the ISA layer cannot import soc without an import cycle; resolves to *soc.SoC in every build
		}
	case OpMRS:
		c.SetX(in.Rd, c.readSysReg(in.Sys))
	case OpMSR:
		if err := c.writeSysReg(in.Sys, c.X(in.Rd)); err != nil {
			return fmt.Errorf("msr at PC %#x: %w", c.PC, err)
		}
	case OpDCZVA:
		if err := c.Sys.DCZVA(c.ID, c.X(in.Rd)); err != nil { //voltvet:ignore VV-HOT006 CPU-to-SoC bus seam: the ISA layer cannot import soc without an import cycle; resolves to *soc.SoC in every build
			return fmt.Errorf("dc zva at PC %#x: %w", c.PC, err)
		}
	case OpDCCIVAC:
		if err := c.Sys.DCCIVAC(c.ID, c.X(in.Rd)); err != nil { //voltvet:ignore VV-HOT006 CPU-to-SoC bus seam: the ISA layer cannot import soc without an import cycle; resolves to *soc.SoC in every build
			return fmt.Errorf("dc civac at PC %#x: %w", c.PC, err)
		}
	case OpICIALLU:
		c.Sys.ICIALLU(c.ID) //voltvet:ignore VV-HOT006 CPU-to-SoC bus seam: the ISA layer cannot import soc without an import cycle; resolves to *soc.SoC in every build
	case OpVMOVI:
		b := uint64(in.Imm)
		rep := b | b<<8 | b<<16 | b<<24 | b<<32 | b<<40 | b<<48 | b<<56
		c.SetV(in.Rd, [2]uint64{rep, rep})
	case OpVEOR:
		a, b := c.V(in.Rn), c.V(in.Rm)
		c.SetV(in.Rd, [2]uint64{a[0] ^ b[0], a[1] ^ b[1]})
	case OpUMOV:
		c.SetX(in.Rd, c.V(in.Rn)[in.Idx])
	case OpINS:
		v := c.V(in.Rd)
		v[in.Idx] = c.X(in.Rn)
		c.SetV(in.Rd, v)
	default:
		return &UndefinedError{PC: c.PC, Word: word}
	}

	c.PC = next
	c.Instret++
	return nil
}

//voltvet:hotpath
func (c *CPU) readSysReg(id uint32) uint64 {
	switch id {
	case SysCurrentEL:
		return uint64(c.EL)
	case SysCoreID:
		return uint64(c.ID)
	case SysCNT:
		return c.Instret
	case SysRAMDATA0:
		return c.ramData
	case SysRAMSTATUS:
		return c.ramStatus
	case SysSCRNS:
		if c.NSLocked {
			return 1
		}
		return c.scrNS
	default:
		return 0
	}
}

//voltvet:hotpath
func (c *CPU) writeSysReg(id uint32, v uint64) error {
	switch id {
	case SysRAMINDEX:
		data, fault := c.Sys.RAMIndexRead(c.ID, v, c.EL) //voltvet:ignore VV-HOT006 CPU-to-SoC bus seam: the ISA layer cannot import soc without an import cycle; resolves to *soc.SoC in every build
		if fault {
			c.ramData = 0
			c.ramStatus = 1
		} else {
			c.ramData = data
			c.ramStatus = 0
		}
		return nil
	case SysSCRNS:
		if c.EL < 3 {
			return fmt.Errorf("isa: SCR_NS write requires EL3 (at EL%d)", c.EL)
		}
		if c.NSLocked {
			return fmt.Errorf("isa: SCR_NS is locked non-secure by the boot chain")
		}
		c.scrNS = v & 1
		return nil
	case SysCurrentEL, SysCoreID, SysCNT, SysRAMDATA0, SysRAMSTATUS:
		return fmt.Errorf("isa: write to read-only system register %s", SysRegName(id))
	default:
		return fmt.Errorf("isa: write to unknown system register %#x", id)
	}
}

// Run executes until the core halts, faults, or maxInstr instructions
// retire. It returns the number of instructions retired during this call
// and the first error, if any. Exceeding maxInstr without halting returns
// a RunawayError so experiment bugs surface instead of hanging.
func (c *CPU) Run(maxInstr uint64) (uint64, error) {
	var n uint64
	for !c.Halted && n < maxInstr {
		if err := c.Step(); err != nil {
			return n, err
		}
		n++
	}
	if !c.Halted && n >= maxInstr {
		return n, &RunawayError{PC: c.PC, Max: maxInstr}
	}
	return n, nil
}

// RunawayError reports a program that failed to halt within its budget.
type RunawayError struct {
	PC  uint64
	Max uint64
}

func (e *RunawayError) Error() string {
	return fmt.Sprintf("isa: program did not halt within %d instructions (PC %#x)", e.Max, e.PC)
}
