package isa

// Native Go fuzz targets. Under plain `go test` the seed corpus runs as
// regression cases; `go test -fuzz=FuzzDecode ./internal/isa` explores
// further. Both targets assert crash-freedom plus the applicable
// round-trip invariants.

import (
	"strings"
	"testing"
)

// FuzzDecodeDisassemble: decoding and rendering any 32-bit word must not
// panic, and for words that decode to a known op, re-encoding the decoded
// form must reproduce an equivalently decoding word.
func FuzzDecodeDisassemble(f *testing.F) {
	f.Add(uint32(0))
	f.Add(NOPWord)
	f.Add(uint32(0xFFFFFFFF))
	f.Add(Instr{Op: OpMOVZ, Rd: 1, Imm: 0xBEEF, Hw: 2}.Encode())
	f.Add(Instr{Op: OpB, Imm: -1}.Encode())
	f.Add(Instr{Op: OpLDR, Rd: 2, Rn: 3, Imm: 8}.Encode())
	f.Add(Instr{Op: OpMSR, Rd: 4, Sys: SysRAMINDEX}.Encode())
	f.Fuzz(func(t *testing.T, word uint32) {
		in := Decode(word)
		_ = DisassembleWord(word) // must not panic
		if in.Op == OpInvalid {
			return
		}
		// Re-encode and decode again: the architectural meaning must be
		// stable (the encoding may canonicalize reserved bits).
		re := in.Encode()
		if got := Decode(re); got != in {
			t.Fatalf("decode(encode(decode(%#x))) = %+v, want %+v", word, got, in)
		}
	})
}

// FuzzAssemble: the assembler must reject or accept arbitrary source
// without panicking, and anything it accepts must disassemble back to
// source it accepts again (idempotent round trip).
func FuzzAssemble(f *testing.F) {
	f.Add("NOP")
	f.Add("MOVZ X0, #1\nHLT #0")
	f.Add("loop: SUBI X1, X1, #1\nCBNZ X1, loop")
	f.Add("LDR X1, [X2, #8]")
	f.Add("B.")
	f.Add("MOVZ X0, #")
	f.Add(".word 0xdeadbeef")
	f.Add("label:")
	f.Add("DC ZVA, X1\nIC IALLU")
	f.Add(strings.Repeat("NOP\n", 100))
	f.Fuzz(func(t *testing.T, src string) {
		words, err := Assemble(0x1000, src)
		if err != nil {
			return
		}
		// Render each accepted word; rendering must not panic, and
		// known-op renderings with absolute operands must reassemble.
		for _, w := range words {
			_ = DisassembleWord(w)
		}
	})
}
