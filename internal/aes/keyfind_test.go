package aes

import (
	"bytes"
	"testing"

	"repro/internal/xrand"
)

func TestFindKeySchedulesExact(t *testing.T) {
	r := xrand.New(21)
	image := make([]byte, 32*1024)
	r.Bytes(image)
	key := []byte("findable aes key")
	sched, _ := ExpandKey128(key)
	const plantAt = 12345
	copy(image[plantAt:], sched)

	hits := FindKeySchedules(image, 0)
	if len(hits) != 1 {
		t.Fatalf("hits = %d, want exactly 1", len(hits))
	}
	if hits[0].Offset != plantAt || !bytes.Equal(hits[0].Key, key) || hits[0].MismatchedBytes != 0 {
		t.Fatalf("hit = %+v", hits[0])
	}
}

func TestFindKeySchedulesMultiple(t *testing.T) {
	image := make([]byte, 8*1024)
	xrand.New(22).Bytes(image)
	keys := [][]byte{
		[]byte("key number one.."),
		[]byte("key number two.."),
	}
	offsets := []int{100, 4000}
	for i, k := range keys {
		sched, _ := ExpandKey128(k)
		copy(image[offsets[i]:], sched)
	}
	hits := FindKeySchedules(image, 0)
	if len(hits) != 2 {
		t.Fatalf("hits = %d, want 2", len(hits))
	}
	for i, h := range hits {
		if h.Offset != offsets[i] || !bytes.Equal(h.Key, keys[i]) {
			t.Fatalf("hit %d = %+v", i, h)
		}
	}
}

func TestFindKeySchedulesNoFalsePositives(t *testing.T) {
	image := make([]byte, 256*1024)
	xrand.New(23).Bytes(image)
	if hits := FindKeySchedules(image, 0); len(hits) != 0 {
		t.Fatalf("false positives in random data: %+v", hits)
	}
	// Zero-filled memory must not match either (all-zero key expands to a
	// schedule that is NOT all zeros).
	zero := make([]byte, 64*1024)
	if hits := FindKeySchedules(zero, 0); len(hits) != 0 {
		t.Fatalf("false positives in zero data: %+v", hits)
	}
}

func TestFindKeySchedulesWithCorruption(t *testing.T) {
	image := make([]byte, 4096)
	xrand.New(24).Bytes(image)
	key := []byte("slightly damaged")
	sched, _ := ExpandKey128(key)
	copy(image[777:], sched)
	// Corrupt three schedule bytes beyond the key itself.
	image[777+40] ^= 0xFF
	image[777+90] ^= 0x0F
	image[777+170] ^= 0x80

	if hits := FindKeySchedules(image, 0); len(hits) != 0 {
		t.Fatal("exact scan should miss the corrupted schedule")
	}
	hits := FindKeySchedules(image, 3)
	if len(hits) != 1 || !bytes.Equal(hits[0].Key, key) || hits[0].MismatchedBytes != 3 {
		t.Fatalf("tolerant scan: %+v", hits)
	}
}

func TestFindKeySchedulesDecayed(t *testing.T) {
	r := xrand.New(25)
	image := make([]byte, 4096)
	// Background: ground-state (decayed-to-zero) memory with sparse
	// survivors, like a real cold-booted region.
	for i := range image {
		if r.Bernoulli(0.1) {
			image[i] = byte(r.Uint64())
		}
	}
	key := make([]byte, 16)
	r.Bytes(key)
	sched, _ := ExpandKey128(key)
	decayed := decaySchedule(sched, 0x00, 0.08, r)
	copy(image[2048:], decayed)

	hits := FindKeySchedulesDecayed(image, 0x00, 0.3, DefaultReconstructConfig(0x00))
	found := false
	for _, h := range hits {
		if h.Offset == 2048 && bytes.Equal(h.Key, key) {
			found = true
		}
	}
	if !found {
		t.Fatalf("decayed schedule not found; hits = %+v", hits)
	}
}

func BenchmarkFindKeySchedules32KB(b *testing.B) {
	image := make([]byte, 32*1024)
	xrand.New(26).Bytes(image)
	sched, _ := ExpandKey128([]byte("benchmark key 16"))
	copy(image[9000:], sched)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if hits := FindKeySchedules(image, 0); len(hits) != 1 {
			b.Fatal("scan failed")
		}
	}
}
