package aes

// This file implements the classic "aeskeyfind"-style scan used in cold
// boot forensics and in §6.1 step 4's post-processing: slide a window
// over a raw memory image and flag positions where the bytes satisfy the
// AES key-schedule recurrence. Because an expanded schedule is 11× the
// key size and fully determined by its first 16 bytes, a schedule in a
// memory dump is self-authenticating — the attacker needs no idea where
// the victim's allocator put it.

// FoundKey is one key-schedule hit in a scanned image.
type FoundKey struct {
	// Offset is the byte position of round key 0 (the master key).
	Offset int
	// Key is the 16-byte master key.
	Key []byte
	// MismatchedBytes counts schedule bytes that disagreed with the
	// expansion (0 for a pristine image; small for a lightly corrupted
	// one).
	MismatchedBytes int
}

// FindKeySchedules scans image for AES-128 key schedules, tolerating up
// to maxErrors mismatched bytes across each 176-byte window (use 0 for
// Volt Boot dumps — they are exact; a few for decayed DRAM images).
// Windows are checked at every byte offset.
func FindKeySchedules(image []byte, maxErrors int) []FoundKey {
	if maxErrors < 0 {
		maxErrors = 0
	}
	var out []FoundKey
	for off := 0; off+ScheduleSize128 <= len(image); off++ {
		if !plausibleKeyWindow(image[off : off+ScheduleSize128]) {
			continue
		}
		sched, err := ExpandKey128(image[off : off+16])
		if err != nil {
			continue
		}
		mismatch := 0
		ok := true
		for i := 16; i < ScheduleSize128; i++ {
			if sched[i] != image[off+i] {
				mismatch++
				if mismatch > maxErrors {
					ok = false
					break
				}
			}
		}
		if ok {
			out = append(out, FoundKey{
				Offset:          off,
				Key:             append([]byte(nil), image[off:off+16]...),
				MismatchedBytes: mismatch,
			})
		}
	}
	return out
}

// plausibleKeyWindow cheaply rejects windows that cannot be a schedule:
// the round-1 recurrence must hold on the first word before we pay for a
// full expansion. This keeps the scan linear in practice.
func plausibleKeyWindow(w []byte) bool {
	// w4[0] = w0[0] ^ sbox(w3[1]) ^ rcon[1]
	if w[16] != w[0]^sbox[w[13]]^rcon[1] {
		return false
	}
	// w4[1] = w0[1] ^ sbox(w3[2])
	if w[17] != w[1]^sbox[w[14]] {
		return false
	}
	return true
}

// FindKeySchedulesDecayed scans an image that suffered unidirectional
// decay toward ground (a cold-booted DRAM dump): windows are accepted
// when every schedule byte is decay-compatible and the implied decay
// fraction stays below maxDecayFraction. The reported key is the
// *reconstructed* one when the window's round key 0 itself decayed.
func FindKeySchedulesDecayed(image []byte, ground byte, maxDecayFraction float64, cfg ReconstructConfig) []FoundKey {
	// A real schedule is ~50% set bits; unidirectional decay below
	// maxDecayFraction cannot push it under this floor. The density gate
	// rejects the vast ground-state background (where every
	// decay-compatibility check is vacuously true) before any expensive
	// reconstruction probes run.
	minBits := int(float64(ScheduleSize128*8) * 0.5 * (1 - maxDecayFraction) * 0.7)
	windowBits := 0
	countBits := func(b byte) int { return popcount(b) }
	for i := 0; i < ScheduleSize128 && i < len(image); i++ {
		windowBits += countBits(image[i] ^ ground)
	}

	var out []FoundKey
	for off := 0; off+ScheduleSize128 <= len(image); off++ {
		w := image[off : off+ScheduleSize128]
		densityOK := windowBits >= minBits
		// Slide the density window for the next iteration regardless of
		// the outcome below.
		if off+ScheduleSize128 < len(image) {
			windowBits += countBits(image[off+ScheduleSize128]^ground) - countBits(w[0]^ground)
		}
		if !densityOK {
			continue
		}
		// Cheap prefilter: the exact recurrence rarely survives decay, so
		// instead require decay-compatibility of the first round words
		// derived from the observed key bytes. This is weaker than the
		// exact check but still rejects almost all random windows.
		v0 := w[0] ^ sbox[w[13]] ^ rcon[1]
		v1 := w[1] ^ sbox[w[14]]
		if !DecayedByteCompatible(v0, w[16], ground) || !DecayedByteCompatible(v1, w[17], ground) {
			continue
		}
		// Full check via reconstruction; bail out quickly on junk by
		// capping nodes.
		probe := cfg
		if probe.MaxNodes <= 0 || probe.MaxNodes > 500_000 {
			probe.MaxNodes = 500_000
		}
		probe.Ground = ground
		key, err := ReconstructKey128(w, probe)
		if err != nil {
			continue
		}
		sched, _ := ExpandKey128(key)
		mismatch := 0
		for i := range sched {
			if sched[i] != w[i] {
				mismatch++
			}
		}
		if float64(mismatch)/float64(ScheduleSize128) > maxDecayFraction {
			continue
		}
		out = append(out, FoundKey{Offset: off, Key: key, MismatchedBytes: mismatch})
	}
	return out
}
