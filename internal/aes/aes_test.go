package aes

import (
	"bytes"
	stdaes "crypto/aes"
	"encoding/hex"
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

// FIPS-197 Appendix A.1 key and Appendix B plaintext/ciphertext.
var (
	fipsKey, _    = hex.DecodeString("2b7e151628aed2a6abf7158809cf4f3c")
	fipsPlain, _  = hex.DecodeString("3243f6a8885a308d313198a2e0370734")
	fipsCipher, _ = hex.DecodeString("3925841d02dc09fbdc118597196a0b32")
)

func TestExpandKeyFIPSVector(t *testing.T) {
	sched, err := ExpandKey128(fipsKey)
	if err != nil {
		t.Fatal(err)
	}
	// FIPS-197 A.1: w4..w7 of the expanded schedule.
	want, _ := hex.DecodeString("a0fafe1788542cb123a339392a6c7605")
	if !bytes.Equal(sched[16:32], want) {
		t.Fatalf("round 1 key = %x, want %x", sched[16:32], want)
	}
	// Last round key (w40..w43).
	wantLast, _ := hex.DecodeString("d014f9a8c9ee2589e13f0cc8b6630ca6")
	if !bytes.Equal(sched[160:176], wantLast) {
		t.Fatalf("round 10 key = %x, want %x", sched[160:176], wantLast)
	}
}

func TestEncryptFIPSVector(t *testing.T) {
	sched, _ := ExpandKey128(fipsKey)
	got := make([]byte, 16)
	if err := EncryptBlock(sched, got, fipsPlain); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, fipsCipher) {
		t.Fatalf("ciphertext = %x, want %x", got, fipsCipher)
	}
}

func TestDecryptInvertsEncrypt(t *testing.T) {
	sched, _ := ExpandKey128(fipsKey)
	ct := make([]byte, 16)
	pt := make([]byte, 16)
	if err := EncryptBlock(sched, ct, fipsPlain); err != nil {
		t.Fatal(err)
	}
	if err := DecryptBlock(sched, pt, ct); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pt, fipsPlain) {
		t.Fatalf("decrypt(encrypt(p)) = %x, want %x", pt, fipsPlain)
	}
}

// Cross-check against the standard library over random keys and blocks.
func TestAgainstStdlib(t *testing.T) {
	r := xrand.New(7)
	for i := 0; i < 200; i++ {
		key := make([]byte, 16)
		block := make([]byte, 16)
		r.Bytes(key)
		r.Bytes(block)
		std, err := stdaes.NewCipher(key)
		if err != nil {
			t.Fatal(err)
		}
		want := make([]byte, 16)
		std.Encrypt(want, block)
		sched, _ := ExpandKey128(key)
		got := make([]byte, 16)
		if err := EncryptBlock(sched, got, block); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("key %x block %x: got %x want %x", key, block, got, want)
		}
		back := make([]byte, 16)
		if err := DecryptBlock(sched, back, got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(back, block) {
			t.Fatalf("decrypt mismatch")
		}
	}
}

func TestExpandKeyRejectsBadLength(t *testing.T) {
	if _, err := ExpandKey128(make([]byte, 15)); err == nil {
		t.Fatal("short key accepted")
	}
	if _, err := ExpandKey128(make([]byte, 32)); err == nil {
		t.Fatal("long key accepted")
	}
}

// Property: the schedule is invertible from ANY round key — the §7.2
// register-theft consequence.
func TestInvertScheduleFromEveryRound(t *testing.T) {
	r := xrand.New(9)
	for trial := 0; trial < 20; trial++ {
		key := make([]byte, 16)
		r.Bytes(key)
		sched, _ := ExpandKey128(key)
		for round := 0; round <= 10; round++ {
			got, err := InvertSchedule128(RoundKey(sched, round), round)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, key) {
				t.Fatalf("round %d inversion: got %x want %x", round, got, key)
			}
		}
	}
}

func TestInvertScheduleValidation(t *testing.T) {
	if _, err := InvertSchedule128(make([]byte, 8), 1); err == nil {
		t.Fatal("short round key accepted")
	}
	if _, err := InvertSchedule128(make([]byte, 16), 11); err == nil {
		t.Fatal("round 11 accepted")
	}
}

func TestCTRRoundTrip(t *testing.T) {
	sched, _ := ExpandKey128(fipsKey)
	msg := []byte("volt boot steals on-chip secrets at full fidelity, no freezing required")
	data := append([]byte(nil), msg...)
	if err := CTRXor(sched, 0xDEADBEEF, data); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(data, msg) {
		t.Fatal("CTR did not change the data")
	}
	if err := CTRXor(sched, 0xDEADBEEF, data); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, msg) {
		t.Fatal("CTR round trip failed")
	}
}

func TestCTRNonceMatters(t *testing.T) {
	sched, _ := ExpandKey128(fipsKey)
	a := []byte("same plaintext here")
	b := append([]byte(nil), a...)
	if err := CTRXor(sched, 1, a); err != nil {
		t.Fatal(err)
	}
	if err := CTRXor(sched, 2, b); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a, b) {
		t.Fatal("different nonces produced identical ciphertext")
	}
}

func TestDecayedByteCompatible(t *testing.T) {
	// ground 0: observed ones must be true ones.
	if !DecayedByteCompatible(0b1111, 0b1010, 0x00) {
		t.Fatal("valid decay rejected")
	}
	if DecayedByteCompatible(0b1010, 0b1111, 0x00) {
		t.Fatal("bit gain toward 1 accepted with ground 0")
	}
	// ground 0xFF: zeros decay to ones.
	if !DecayedByteCompatible(0b0000_0000, 0b0000_0101, 0xFF) {
		t.Fatal("valid decay toward 1 rejected")
	}
	if DecayedByteCompatible(0b0000_0101, 0b0000_0000, 0xFF) {
		t.Fatal("bit loss accepted with ground 0xFF")
	}
	// identity is always compatible
	if err := quick.Check(func(b, g byte) bool {
		ground := byte(0)
		if g&1 == 1 {
			ground = 0xFF
		}
		return DecayedByteCompatible(b, b, ground)
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCandidatesForContainTruth(t *testing.T) {
	if err := quick.Check(func(trueB byte, mask byte) bool {
		obs := trueB &^ mask // decay some ones toward ground 0
		for _, c := range candidatesFor(obs, 0x00) {
			if c == trueB {
				return true
			}
		}
		return false
	}, nil); err != nil {
		t.Fatal(err)
	}
}

// decaySchedule flips each set bit to ground with probability delta.
func decaySchedule(sched []byte, ground byte, delta float64, r *xrand.Rand) []byte {
	out := append([]byte(nil), sched...)
	for i := range out {
		for bit := 0; bit < 8; bit++ {
			mask := byte(1) << bit
			groundBit := ground & mask
			if out[i]&mask != groundBit && r.Bernoulli(delta) {
				out[i] = out[i]&^mask | groundBit
			}
		}
	}
	return out
}

func TestReconstructNoDecay(t *testing.T) {
	key := []byte("sixteen byte key")
	sched, _ := ExpandKey128(key)
	got, err := ReconstructKey128(sched, DefaultReconstructConfig(0x00))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, key) {
		t.Fatalf("got %x want %x", got, key)
	}
}

func TestReconstructWithDecay(t *testing.T) {
	r := xrand.New(11)
	for _, delta := range []float64{0.05, 0.10, 0.15} {
		for trial := 0; trial < 3; trial++ {
			key := make([]byte, 16)
			r.Bytes(key)
			sched, _ := ExpandKey128(key)
			decayed := decaySchedule(sched, 0x00, delta, r)
			got, err := ReconstructKey128(decayed, DefaultReconstructConfig(0x00))
			if err != nil {
				t.Fatalf("delta=%v trial=%d: %v", delta, trial, err)
			}
			if !bytes.Equal(got, key) {
				t.Fatalf("delta=%v: got %x want %x", delta, got, key)
			}
		}
	}
}

func TestReconstructGroundFF(t *testing.T) {
	r := xrand.New(13)
	key := make([]byte, 16)
	r.Bytes(key)
	sched, _ := ExpandKey128(key)
	decayed := decaySchedule(sched, 0xFF, 0.10, r)
	got, err := ReconstructKey128(decayed, DefaultReconstructConfig(0xFF))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, key) {
		t.Fatalf("got %x want %x", got, key)
	}
}

// Bidirectional corruption (what bistable SRAM decay produces) must make
// reconstruction fail — the paper's §5.1 point about SRAM post-processing.
func TestReconstructFailsOnBidirectionalNoise(t *testing.T) {
	r := xrand.New(17)
	key := make([]byte, 16)
	r.Bytes(key)
	sched, _ := ExpandKey128(key)
	corrupted := append([]byte(nil), sched...)
	// flip 20% of bits in both directions
	for i := range corrupted {
		for bit := 0; bit < 8; bit++ {
			if r.Bernoulli(0.2) {
				corrupted[i] ^= 1 << bit
			}
		}
	}
	cfg := DefaultReconstructConfig(0x00)
	cfg.MaxNodes = 2_000_000
	if got, err := ReconstructKey128(corrupted, cfg); err == nil && bytes.Equal(got, key) {
		t.Fatal("reconstruction should not succeed on bidirectional noise")
	}
}

func TestReconstructBadLength(t *testing.T) {
	if _, err := ReconstructKey128(make([]byte, 100), DefaultReconstructConfig(0)); err == nil {
		t.Fatal("short image accepted")
	}
}

func BenchmarkEncryptBlock(b *testing.B) {
	sched, _ := ExpandKey128(fipsKey)
	dst := make([]byte, 16)
	for i := 0; i < b.N; i++ {
		if err := EncryptBlock(sched, dst, fipsPlain); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReconstruct10pct(b *testing.B) {
	r := xrand.New(19)
	key := make([]byte, 16)
	r.Bytes(key)
	sched, _ := ExpandKey128(key)
	decayed := decaySchedule(sched, 0x00, 0.10, r)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReconstructKey128(decayed, DefaultReconstructConfig(0x00)); err != nil {
			b.Fatal(err)
		}
	}
}
