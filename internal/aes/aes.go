// Package aes implements AES-128 from first principles, plus the
// key-schedule tooling the attack experiments need:
//
//   - schedule expansion and *inversion* (recover the master key from any
//     single round key — why extracting round keys from vector registers
//     in §7.2 immediately breaks TRESOR-style on-chip crypto), and
//   - Halderman-style reconstruction of a master key from a *decayed*
//     schedule image under unidirectional DRAM decay, used by the classic
//     cold boot contrast experiment (§9.1).
//
// The cipher itself is deliberately independent of crypto/aes so the
// repository is self-contained bottom to top; the tests cross-check
// against the standard library and FIPS-197 vectors.
package aes

import (
	"errors"
	"fmt"
)

// BlockSize is the AES block size in bytes.
const BlockSize = 16

// KeySize128 is the AES-128 key size in bytes.
const KeySize128 = 16

// ScheduleSize128 is the expanded AES-128 key schedule size in bytes
// (11 round keys × 16 bytes).
const ScheduleSize128 = 176

var sbox [256]byte
var invSbox [256]byte

func init() {
	// Generate the S-box from the algebraic definition: multiplicative
	// inverse in GF(2^8) followed by the affine transform. The inverse
	// table is built by exhaustive search at init time (65k field
	// multiplications — negligible) so the construction is transparently
	// the textbook definition.
	var inverse [256]byte
	for x := 1; x < 256; x++ {
		for y := 1; y < 256; y++ {
			if gmul(byte(x), byte(y)) == 1 {
				inverse[x] = byte(y)
				break
			}
		}
	}
	for x := 0; x < 256; x++ {
		inv := inverse[x]
		s := inv ^ rotl8(inv, 1) ^ rotl8(inv, 2) ^ rotl8(inv, 3) ^ rotl8(inv, 4) ^ 0x63
		sbox[x] = s
		invSbox[s] = byte(x)
	}
}

// SBox returns the forward S-box substitution of x. The side-channel
// stack uses it on both sides of the attack: the trace victim stages
// the table into DRAM for its SubBytes lookups, and the CPA hypothesis
// model predicts the Hamming weight of SBox(plaintext ^ guess).
func SBox(x byte) byte { return sbox[x] }

func rotl8(x byte, k uint) byte { return x<<k | x>>(8-k) }

// gmul multiplies in GF(2^8) with the AES polynomial.
func gmul(a, b byte) byte {
	var p byte
	for i := 0; i < 8; i++ {
		if b&1 != 0 {
			p ^= a
		}
		hi := a & 0x80
		a <<= 1
		if hi != 0 {
			a ^= 0x1B
		}
		b >>= 1
	}
	return p
}

// rcon[i] is the round constant for round i (1-based).
var rcon = [11]byte{0x00, 0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36}

// ExpandKey128 expands a 16-byte key into the 176-byte AES-128 schedule.
func ExpandKey128(key []byte) ([]byte, error) {
	if len(key) != KeySize128 {
		return nil, fmt.Errorf("aes: key length %d, want %d", len(key), KeySize128)
	}
	w := make([]byte, ScheduleSize128)
	copy(w, key)
	for i := 16; i < ScheduleSize128; i += 4 {
		var t [4]byte
		copy(t[:], w[i-4:i])
		if i%16 == 0 {
			// RotWord + SubWord + Rcon
			t[0], t[1], t[2], t[3] = sbox[t[1]]^rcon[i/16], sbox[t[2]], sbox[t[3]], sbox[t[0]]
		}
		for k := 0; k < 4; k++ {
			w[i+k] = w[i-16+k] ^ t[k]
		}
	}
	return w, nil
}

// RoundKey returns round key r (0–10) from a full schedule.
func RoundKey(schedule []byte, r int) []byte {
	return schedule[r*16 : (r+1)*16]
}

// InvertSchedule128 recovers the original 16-byte key from any single
// round key of an AES-128 schedule. This is the classic observation that
// the schedule is invertible: possession of *any* round key (say, one
// lifted out of a vector register) is possession of the master key.
func InvertSchedule128(roundKey []byte, round int) ([]byte, error) {
	if len(roundKey) != 16 {
		return nil, errors.New("aes: round key must be 16 bytes")
	}
	if round < 0 || round > 10 {
		return nil, fmt.Errorf("aes: round %d out of range", round)
	}
	w := make([]byte, 16)
	copy(w, roundKey)
	for r := round; r > 0; r-- {
		prev := make([]byte, 16)
		// Words 1..3 of the previous round key: w[i] = cur[i] ^ cur[i-1].
		for i := 15; i >= 4; i-- {
			prev[i] = w[i] ^ w[i-4]
		}
		// Word 0: cur[0..3] = prev[0..3] ^ SubWord(RotWord(prev[12..15])) ^ rcon
		t := [4]byte{
			sbox[prev[13]] ^ rcon[r],
			sbox[prev[14]],
			sbox[prev[15]],
			sbox[prev[12]],
		}
		for k := 0; k < 4; k++ {
			prev[k] = w[k] ^ t[k]
		}
		w = prev
	}
	return w, nil
}

// state is the 4×4 AES state in column-major order (as the byte stream).
type state [16]byte

func (s *state) addRoundKey(rk []byte) {
	for i := range s {
		s[i] ^= rk[i]
	}
}

func (s *state) subBytes() {
	for i := range s {
		s[i] = sbox[s[i]]
	}
}

func (s *state) invSubBytes() {
	for i := range s {
		s[i] = invSbox[s[i]]
	}
}

// shiftRows rotates row r left by r; with column-major layout, row r is
// bytes r, r+4, r+8, r+12.
func (s *state) shiftRows() {
	s[1], s[5], s[9], s[13] = s[5], s[9], s[13], s[1]
	s[2], s[6], s[10], s[14] = s[10], s[14], s[2], s[6]
	s[3], s[7], s[11], s[15] = s[15], s[3], s[7], s[11]
}

func (s *state) invShiftRows() {
	s[5], s[9], s[13], s[1] = s[1], s[5], s[9], s[13]
	s[10], s[14], s[2], s[6] = s[2], s[6], s[10], s[14]
	s[15], s[3], s[7], s[11] = s[3], s[7], s[11], s[15]
}

func (s *state) mixColumns() {
	for c := 0; c < 4; c++ {
		a0, a1, a2, a3 := s[4*c], s[4*c+1], s[4*c+2], s[4*c+3]
		s[4*c] = gmul(a0, 2) ^ gmul(a1, 3) ^ a2 ^ a3
		s[4*c+1] = a0 ^ gmul(a1, 2) ^ gmul(a2, 3) ^ a3
		s[4*c+2] = a0 ^ a1 ^ gmul(a2, 2) ^ gmul(a3, 3)
		s[4*c+3] = gmul(a0, 3) ^ a1 ^ a2 ^ gmul(a3, 2)
	}
}

func (s *state) invMixColumns() {
	for c := 0; c < 4; c++ {
		a0, a1, a2, a3 := s[4*c], s[4*c+1], s[4*c+2], s[4*c+3]
		s[4*c] = gmul(a0, 14) ^ gmul(a1, 11) ^ gmul(a2, 13) ^ gmul(a3, 9)
		s[4*c+1] = gmul(a0, 9) ^ gmul(a1, 14) ^ gmul(a2, 11) ^ gmul(a3, 13)
		s[4*c+2] = gmul(a0, 13) ^ gmul(a1, 9) ^ gmul(a2, 14) ^ gmul(a3, 11)
		s[4*c+3] = gmul(a0, 11) ^ gmul(a1, 13) ^ gmul(a2, 9) ^ gmul(a3, 14)
	}
}

// EncryptBlock encrypts one 16-byte block with the expanded schedule.
func EncryptBlock(schedule, dst, src []byte) error {
	if len(schedule) != ScheduleSize128 {
		return errors.New("aes: bad schedule length")
	}
	if len(dst) < BlockSize || len(src) < BlockSize {
		return errors.New("aes: short block")
	}
	var s state
	copy(s[:], src[:16])
	s.addRoundKey(RoundKey(schedule, 0))
	for r := 1; r <= 9; r++ {
		s.subBytes()
		s.shiftRows()
		s.mixColumns()
		s.addRoundKey(RoundKey(schedule, r))
	}
	s.subBytes()
	s.shiftRows()
	s.addRoundKey(RoundKey(schedule, 10))
	copy(dst, s[:])
	return nil
}

// DecryptBlock decrypts one 16-byte block.
func DecryptBlock(schedule, dst, src []byte) error {
	if len(schedule) != ScheduleSize128 {
		return errors.New("aes: bad schedule length")
	}
	if len(dst) < BlockSize || len(src) < BlockSize {
		return errors.New("aes: short block")
	}
	var s state
	copy(s[:], src[:16])
	s.addRoundKey(RoundKey(schedule, 10))
	s.invShiftRows()
	s.invSubBytes()
	for r := 9; r >= 1; r-- {
		s.addRoundKey(RoundKey(schedule, r))
		s.invMixColumns()
		s.invShiftRows()
		s.invSubBytes()
	}
	s.addRoundKey(RoundKey(schedule, 0))
	copy(dst, s[:])
	return nil
}

// CTRXor encrypts or decrypts data in counter mode with the given 8-byte
// nonce, writing in place. CTR is an involution, so one function serves
// both directions. The experiments use it as the "full disk encryption"
// the attacker ultimately defeats.
func CTRXor(schedule []byte, nonce uint64, data []byte) error {
	var ctr, ks [16]byte
	for i := 0; i < 8; i++ {
		ctr[i] = byte(nonce >> (8 * i))
	}
	for blk := 0; blk*16 < len(data); blk++ {
		for i := 0; i < 8; i++ {
			ctr[8+i] = byte(uint64(blk) >> (8 * i))
		}
		if err := EncryptBlock(schedule, ks[:], ctr[:]); err != nil {
			return err
		}
		for i := 0; i < 16 && blk*16+i < len(data); i++ {
			data[blk*16+i] ^= ks[i]
		}
	}
	return nil
}
