package aes

import (
	"errors"
	"fmt"
)

// This file implements recovery of an AES-128 master key from a *decayed*
// key-schedule image, in the style of the cold boot attack literature:
// DRAM decay is unidirectional (toward a known per-region ground state),
// so every bit observed in the non-ground state is known-correct, and the
// redundancy of the key schedule pins down the rest.
//
// The reproduction's Ablation C uses this to demonstrate the contrast the
// Volt Boot paper draws in §5.1/§9.2: DRAM's correctable decay admits
// key reconstruction, while bistable SRAM gives the attacker nothing to
// correct against — and Volt Boot sidesteps the problem entirely by
// retaining data without error.
//
// The search is a depth-first walk over the 16 key bytes in an order that
// lets each choice be checked against one or two derived round-1 bytes
// immediately, with a full schedule verification at the leaves. It
// comfortably handles the decay fractions the Ablation C experiment uses
// (≈10–15 % of set bits lost); the original publication's global solver
// tolerates more decay, which we trade away for a compact implementation.

// DecayedByteCompatible reports whether trueByte could have decayed into
// obsByte given the ground value: every bit that moved must have moved
// toward ground.
func DecayedByteCompatible(trueByte, obsByte, ground byte) bool {
	diff := trueByte ^ obsByte
	// Bits that changed must now equal the ground bit.
	return diff&(obsByte^ground) == 0
}

// candidatesFor enumerates all bytes that could have decayed into obs,
// ordered by the number of decayed bits each implies (fewest first). For
// ground 0x00 these are the supersets of obs's bits; for ground 0xFF the
// subsets. Likelihood ordering matters: at realistic decay rates the true
// byte implies few flips, so trying low-flip candidates first finds the
// key orders of magnitude sooner.
func candidatesFor(obs, ground byte) []byte {
	free := ^byte(0)
	if ground == 0 {
		free = ^obs // zero bits may originally have been ones
	} else {
		free = obs // one bits may originally have been zeros
	}
	var out []byte
	sub := free
	for {
		out = append(out, obs^sub)
		if sub == 0 {
			break
		}
		sub = (sub - 1) & free
	}
	// Stable sort by popcount of the flip mask, fewest flips first.
	buckets := make([][]byte, 9)
	for _, c := range out {
		n := popcount(c ^ obs)
		buckets[n] = append(buckets[n], c)
	}
	out = out[:0]
	for _, b := range buckets {
		out = append(out, b...)
	}
	return out
}

func popcount(b byte) int {
	n := 0
	for b != 0 {
		n += int(b & 1)
		b >>= 1
	}
	return n
}

// ReconstructConfig tunes the search.
type ReconstructConfig struct {
	// Ground is the decay target byte (0x00 or 0xFF) for the region
	// holding the schedule.
	Ground byte
	// MaxNodes bounds the number of DFS nodes explored before giving up.
	MaxNodes int
}

// DefaultReconstructConfig returns limits suitable for ≤15 % decay.
func DefaultReconstructConfig(ground byte) ReconstructConfig {
	return ReconstructConfig{Ground: ground, MaxNodes: 50_000_000}
}

// ErrSearchExhausted reports that no key consistent with the image exists
// (wrong region, bidirectional corruption, or too much decay).
var ErrSearchExhausted = errors.New("aes: no key consistent with decayed schedule")

// ErrBudgetExceeded reports that the node budget ran out first.
var ErrBudgetExceeded = errors.New("aes: reconstruction node budget exceeded")

// ReconstructKey128 recovers the AES-128 master key from a 176-byte
// decayed schedule image. It returns the unique key whose full expansion
// is decay-compatible with the image.
func ReconstructKey128(observed []byte, cfg ReconstructConfig) ([]byte, error) {
	if len(observed) != ScheduleSize128 {
		return nil, fmt.Errorf("aes: schedule image must be %d bytes, got %d", ScheduleSize128, len(observed))
	}

	// DFS step table. Each step fixes one key byte (index into key[0:16])
	// and lists the round-1 schedule bytes that become checkable.
	//
	// Key layout: w0 = key[0:4], w1 = key[4:8], w2 = key[8:12],
	// w3 = key[12:16]. Round-1 schedule bytes (observed[16:32]):
	//   w4[k] = w0[k] ^ sbox(w3[(k+1)%4]) ^ rcon[1]·(k==0)
	//   w5[k] = w4[k] ^ w1[k]
	//   w6[k] = w5[k] ^ w2[k]
	//   w7[k] = w6[k] ^ w3[k]
	type step struct {
		keyByte int // index into key
		// checks lists columns k for which choosing this byte completes
		// w4[k] / w5[k] / w6[k]+w7[k].
		checkW4  int // column or -1
		checkW5  int
		checkW67 int
	}
	steps := []step{
		{keyByte: 13, checkW4: -1, checkW5: -1, checkW67: -1}, // w3[1]
		{keyByte: 0, checkW4: 0, checkW5: -1, checkW67: -1},   // w0[0]
		{keyByte: 4, checkW4: -1, checkW5: 0, checkW67: -1},   // w1[0]
		{keyByte: 12, checkW4: -1, checkW5: -1, checkW67: -1}, // w3[0]
		{keyByte: 8, checkW4: -1, checkW5: -1, checkW67: 0},   // w2[0]
		{keyByte: 14, checkW4: -1, checkW5: -1, checkW67: -1}, // w3[2]
		{keyByte: 1, checkW4: 1, checkW5: -1, checkW67: -1},   // w0[1]
		{keyByte: 5, checkW4: -1, checkW5: 1, checkW67: -1},   // w1[1]
		{keyByte: 9, checkW4: -1, checkW5: -1, checkW67: 1},   // w2[1]
		{keyByte: 15, checkW4: -1, checkW5: -1, checkW67: -1}, // w3[3]
		{keyByte: 2, checkW4: 2, checkW5: -1, checkW67: -1},   // w0[2]
		{keyByte: 6, checkW4: -1, checkW5: 2, checkW67: -1},   // w1[2]
		{keyByte: 10, checkW4: -1, checkW5: -1, checkW67: 2},  // w2[2]
		{keyByte: 3, checkW4: 3, checkW5: -1, checkW67: -1},   // w0[3]
		{keyByte: 7, checkW4: -1, checkW5: 3, checkW67: -1},   // w1[3]
		{keyByte: 11, checkW4: -1, checkW5: -1, checkW67: 3},  // w2[3]
	}

	// Precompute per-step candidate lists (likelihood-ordered).
	cands := make([][]byte, len(steps))
	for i, st := range steps {
		cands[i] = candidatesFor(observed[st.keyByte], cfg.Ground)
	}

	var key [16]byte
	var w4, w5 [4]byte
	nodes := 0
	budget := cfg.MaxNodes
	if budget <= 0 {
		budget = 50_000_000
	}

	compat := func(t byte, schedIdx int) bool {
		return DecayedByteCompatible(t, observed[schedIdx], cfg.Ground)
	}
	flipsOf := func(t byte, schedIdx int) int {
		return popcount(t ^ observed[schedIdx])
	}

	var result []byte
	overBudget := false

	// Iterative deepening over the total number of decayed bits the
	// assignment implies across the key and round-1 bytes. The true key
	// implies ~(decay rate × set bits) flips, so shallow passes find it
	// quickly while bounding the subtree blow-up that weak superset
	// checks would otherwise allow.
	var dfs func(depth, flipBudget int) bool
	dfs = func(depth, flipBudget int) bool {
		if flipBudget < 0 {
			return false
		}
		if nodes >= budget {
			overBudget = true
			return false
		}
		if depth == len(steps) {
			// Full candidate key: verify the entire schedule.
			sched, err := ExpandKey128(key[:])
			if err != nil {
				return false
			}
			for i := 0; i < ScheduleSize128; i++ {
				if !compat(sched[i], i) {
					return false
				}
			}
			result = append([]byte(nil), key[:]...)
			return true
		}
		st := steps[depth]
		for _, cand := range cands[depth] {
			nodes++
			if nodes >= budget {
				overBudget = true
				return false
			}
			spent := flipsOf(cand, st.keyByte)
			if spent > flipBudget {
				break // candidates are flip-ordered: the rest cost more
			}
			key[st.keyByte] = cand
			if st.checkW4 >= 0 {
				k := st.checkW4
				rc := byte(0)
				if k == 0 {
					rc = rcon[1]
				}
				v := key[k] ^ sbox[key[12+(k+1)%4]] ^ rc
				if !compat(v, 16+k) {
					continue
				}
				spent += flipsOf(v, 16+k)
				w4[k] = v
			}
			if st.checkW5 >= 0 {
				k := st.checkW5
				v := w4[k] ^ key[4+k]
				if !compat(v, 20+k) {
					continue
				}
				spent += flipsOf(v, 20+k)
				w5[k] = v
			}
			if st.checkW67 >= 0 {
				k := st.checkW67
				v6 := w5[k] ^ key[8+k]
				if !compat(v6, 24+k) {
					continue
				}
				v7 := v6 ^ key[12+k]
				if !compat(v7, 28+k) {
					continue
				}
				spent += flipsOf(v6, 24+k) + flipsOf(v7, 28+k)
			}
			if spent > flipBudget {
				continue
			}
			if dfs(depth+1, flipBudget-spent) {
				return true
			}
			if overBudget {
				return false
			}
		}
		return false
	}

	// The checked region covers 32 schedule bytes = 256 bits; a flip
	// budget of 128 admits 50% decay of set bits, far beyond what the
	// search can finish anyway, so the ladder top is effectively "all".
	for _, d := range []int{2, 6, 12, 24, 48, 96, 128} {
		if dfs(0, d) {
			return result, nil
		}
		if overBudget {
			return nil, ErrBudgetExceeded
		}
	}
	return nil, ErrSearchExhausted
}
