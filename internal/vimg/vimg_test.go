package vimg

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

func TestBitmapSetGet(t *testing.T) {
	b := NewBitmap(17, 5)
	b.Set(16, 4, true)
	b.Set(0, 0, true)
	if !b.Get(16, 4) || !b.Get(0, 0) || b.Get(1, 0) {
		t.Fatal("Set/Get mismatch")
	}
	b.Set(16, 4, false)
	if b.Get(16, 4) {
		t.Fatal("clear failed")
	}
}

func TestBitmapBoundsPanic(t *testing.T) {
	b := NewBitmap(8, 8)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	b.Get(8, 0)
}

func TestFromBitsToBytesRoundTrip(t *testing.T) {
	data := make([]byte, 512)
	xrand.New(4).Bytes(data)
	b := FromBits(data, 64) // 64 px wide, 64 rows
	back := b.ToBytes()
	if !bytes.Equal(back, data) {
		t.Fatal("FromBits/ToBytes round trip failed")
	}
}

func TestFromBitsBitOrder(t *testing.T) {
	// bit 0 of byte 0 must be pixel (0,0)
	b := FromBits([]byte{0x01}, 8)
	if !b.Get(0, 0) {
		t.Fatal("bit 0 should be pixel (0,0)")
	}
	b = FromBits([]byte{0x80}, 8)
	if !b.Get(7, 0) {
		t.Fatal("bit 7 should be pixel (7,0)")
	}
}

func TestPBMFormat(t *testing.T) {
	b := NewBitmap(16, 2)
	b.Set(0, 0, true)
	pbm := b.PBM()
	if !bytes.HasPrefix(pbm, []byte("P4\n16 2\n")) {
		t.Fatalf("PBM header wrong: %q", pbm[:12])
	}
	body := pbm[len("P4\n16 2\n"):]
	if len(body) != 4 { // 2 bytes per row × 2 rows
		t.Fatalf("PBM body length %d", len(body))
	}
	if body[0] != 0x80 {
		t.Fatalf("PBM MSB-first pixel wrong: %#x", body[0])
	}
}

func TestFractionSet(t *testing.T) {
	b := NewBitmap(8, 2)
	for x := 0; x < 8; x++ {
		b.Set(x, 0, true)
	}
	if f := b.FractionSet(); f != 0.5 {
		t.Fatalf("FractionSet = %v", f)
	}
}

func TestFractionSetMatchesData(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		data := make([]byte, 128)
		xrand.New(seed).Bytes(data)
		b := FromBits(data, 32)
		ones := 0
		for _, by := range data {
			for i := 0; i < 8; i++ {
				ones += int(by >> i & 1)
			}
		}
		want := float64(ones) / float64(len(data)*8)
		return math.Abs(b.FractionSet()-want) < 1e-12
	}, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestASCIIDensityShape(t *testing.T) {
	data := make([]byte, 4096)
	for i := range data[:2048] {
		data[i] = 0xFF
	}
	out := ASCIIDensity(data, 32, 4)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("rows = %d", len(lines))
	}
	for _, l := range lines {
		if len([]rune(l)) != 32 {
			t.Fatalf("row width = %d", len([]rune(l)))
		}
	}
	// top half dense, bottom half empty
	if !strings.Contains(lines[0], "@") {
		t.Fatalf("dense row missing dense rune: %q", lines[0])
	}
	if strings.ContainsAny(lines[3], "@%#") {
		t.Fatalf("empty row has dense runes: %q", lines[3])
	}
}

func TestTestPattern512Properties(t *testing.T) {
	p := TestPattern512()
	if len(p) != 512*512/8 {
		t.Fatalf("pattern size = %d, want 32768", len(p))
	}
	// deterministic
	if !bytes.Equal(p, TestPattern512()) {
		t.Fatal("pattern not deterministic")
	}
	// visually structured: neither empty nor full nor perfectly balanced noise
	b := FromBits(p, 512)
	f := b.FractionSet()
	if f < 0.2 || f > 0.8 {
		t.Fatalf("pattern density %v out of expected band", f)
	}
}

func TestSparklineProfile(t *testing.T) {
	s := SparklineProfile([]int{0, 0, 10, 0, 0}, 5)
	if len([]rune(s)) != 5 {
		t.Fatalf("width = %d", len([]rune(s)))
	}
	runes := []rune(s)
	if runes[2] != '█' {
		t.Fatalf("peak rune = %q", runes[2])
	}
	if runes[0] != '▁' {
		t.Fatalf("floor rune = %q", runes[0])
	}
	if SparklineProfile(nil, 10) != "" {
		t.Fatal("empty profile")
	}
	// all-zero profile renders at floor without dividing by zero
	z := SparklineProfile([]int{0, 0, 0}, 3)
	for _, r := range z {
		if r != '▁' {
			t.Fatalf("zero profile rune = %q", r)
		}
	}
}

func TestSparklineDownsamples(t *testing.T) {
	profile := make([]int, 1000)
	profile[999] = 5
	s := SparklineProfile(profile, 10)
	runes := []rune(s)
	if runes[9] != '█' {
		t.Fatalf("downsampled peak missing: %q", s)
	}
}
