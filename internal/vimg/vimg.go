// Package vimg renders memory images as bitmaps, reproducing the visual
// figures of the paper (Figures 3, 7, 8, 9): binary PBM files where each
// memory bit is a pixel, plus compact ASCII density maps for terminal
// output, and a deterministic test-pattern generator standing in for the
// 512×512 bitmap the i.MX53 experiment stores in iRAM.
package vimg

import (
	"fmt"
	"math/bits"
	"strings"
)

// Bitmap is a 1-bit-per-pixel image backed by packed bytes, row-major,
// MSB-first within a byte (the PBM P4 convention).
type Bitmap struct {
	Width, Height int
	// rows[y] holds ceil(Width/8) bytes.
	rows [][]byte
}

// NewBitmap allocates a zeroed bitmap.
func NewBitmap(width, height int) *Bitmap {
	if width <= 0 || height <= 0 {
		panic("vimg: non-positive dimensions")
	}
	b := &Bitmap{Width: width, Height: height, rows: make([][]byte, height)}
	stride := (width + 7) / 8
	for y := range b.rows {
		b.rows[y] = make([]byte, stride)
	}
	return b
}

// FromBits builds a bitmap of the given width from a memory image, one
// pixel per bit in little-endian bit order within each source byte (bit 0
// of byte 0 is pixel (0,0)). Height is derived from the data length;
// partial final rows are dropped.
func FromBits(data []byte, width int) *Bitmap {
	if width <= 0 {
		panic("vimg: non-positive width")
	}
	totalBits := len(data) * 8
	height := totalBits / width
	if height == 0 {
		panic("vimg: image narrower than one row")
	}
	b := NewBitmap(width, height)
	for y := 0; y < height; y++ {
		for x := 0; x < width; x++ {
			i := y*width + x
			if data[i/8]>>(uint(i)%8)&1 == 1 {
				b.Set(x, y, true)
			}
		}
	}
	return b
}

// Set writes one pixel.
func (b *Bitmap) Set(x, y int, v bool) {
	if x < 0 || x >= b.Width || y < 0 || y >= b.Height {
		panic(fmt.Sprintf("vimg: pixel (%d,%d) out of %dx%d", x, y, b.Width, b.Height))
	}
	mask := byte(0x80) >> (uint(x) % 8)
	if v {
		b.rows[y][x/8] |= mask
	} else {
		b.rows[y][x/8] &^= mask
	}
}

// Get reads one pixel.
func (b *Bitmap) Get(x, y int) bool {
	if x < 0 || x >= b.Width || y < 0 || y >= b.Height {
		panic(fmt.Sprintf("vimg: pixel (%d,%d) out of %dx%d", x, y, b.Width, b.Height))
	}
	return b.rows[y][x/8]&(0x80>>(uint(x)%8)) != 0
}

// PBM serializes the bitmap as a binary PBM (P4) file.
func (b *Bitmap) PBM() []byte {
	header := fmt.Sprintf("P4\n%d %d\n", b.Width, b.Height)
	out := make([]byte, 0, len(header)+b.Height*len(b.rows[0]))
	out = append(out, header...)
	for _, row := range b.rows {
		out = append(out, row...)
	}
	return out
}

// FractionSet returns the fraction of set pixels.
func (b *Bitmap) FractionSet() float64 {
	ones, total := 0, 0
	for y := 0; y < b.Height; y++ {
		for x := 0; x < b.Width; x++ {
			if b.Get(x, y) {
				ones++
			}
			total++
		}
	}
	if total == 0 {
		return 0
	}
	return float64(ones) / float64(total)
}

// ToBytes flattens the bitmap back to a little-endian-bit memory image,
// the inverse of FromBits.
func (b *Bitmap) ToBytes() []byte {
	out := make([]byte, b.Width*b.Height/8)
	for y := 0; y < b.Height; y++ {
		for x := 0; x < b.Width; x++ {
			if b.Get(x, y) {
				i := y*b.Width + x
				out[i/8] |= 1 << (uint(i) % 8)
			}
		}
	}
	return out
}

// densityRamp maps a 0..1 set-bit density to a display rune, dark to
// light.
var densityRamp = []rune(" .:-=+*#%@")

// ASCIIDensity renders a memory image as a rows×cols character grid where
// each cell's rune encodes the set-bit density of its chunk of the image.
// It is the terminal stand-in for the paper's grayscale cache snapshots:
// uniform mid-density noise reads as uninitialized SRAM, solid blocks as
// retained patterns.
func ASCIIDensity(data []byte, cols, rows int) string {
	if cols <= 0 || rows <= 0 {
		panic("vimg: non-positive grid")
	}
	var sb strings.Builder
	n := len(data)
	cells := cols * rows
	if cells > n {
		cells = n
	}
	chunk := n / (cols * rows)
	if chunk == 0 {
		chunk = 1
	}
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			lo := (r*cols + c) * chunk
			if lo >= n {
				sb.WriteRune(' ')
				continue
			}
			hi := lo + chunk
			if hi > n {
				hi = n
			}
			ones := 0
			for _, by := range data[lo:hi] {
				ones += bits.OnesCount8(by)
			}
			density := float64(ones) / float64((hi-lo)*8)
			idx := int(density * float64(len(densityRamp)-1))
			sb.WriteRune(densityRamp[idx])
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// TestPattern512 generates the deterministic 512×512 1-bit test image
// (32 KB) the iRAM experiment stores: concentric rings and a diagonal
// grid, visually distinctive so retained regions are obvious and
// clobbered regions stand out. Four copies tile the i.MX53's 128 KB iRAM
// like the paper's four bitmap quadrants.
func TestPattern512() []byte {
	const w = 512
	b := NewBitmap(w, w)
	cx, cy := w/2, w/2
	for y := 0; y < w; y++ {
		for x := 0; x < w; x++ {
			dx, dy := x-cx, y-cy
			d2 := dx*dx + dy*dy
			ring := (d2/4096)%2 == 0
			grid := (x+y)%64 < 8 || (x-y+w)%64 < 8
			b.Set(x, y, ring != grid) // xor of the two patterns
		}
	}
	return b.ToBytes()
}

// SparklineProfile renders an integer profile (e.g. a block Hamming
// distance series) as a fixed-width sparkline string, used to print the
// Figure 10 curve in a terminal.
func SparklineProfile(profile []int, width int) string {
	if len(profile) == 0 || width <= 0 {
		return ""
	}
	ramp := []rune("▁▂▃▄▅▆▇█")
	max := 0
	for _, v := range profile {
		if v > max {
			max = v
		}
	}
	var sb strings.Builder
	for c := 0; c < width; c++ {
		lo := c * len(profile) / width
		hi := (c + 1) * len(profile) / width
		if hi <= lo {
			hi = lo + 1
		}
		if lo >= len(profile) {
			break
		}
		if hi > len(profile) {
			hi = len(profile)
		}
		peak := 0
		for _, v := range profile[lo:hi] {
			if v > peak {
				peak = v
			}
		}
		if max == 0 {
			sb.WriteRune(ramp[0])
			continue
		}
		idx := peak * (len(ramp) - 1) / max
		sb.WriteRune(ramp[idx])
	}
	return sb.String()
}
