// Package trace is the per-cycle power-trace capturer: the simulated
// oscilloscope clipped onto one core's supply. The interpreter retires
// one instruction per core-clock nanosecond, so one sample per retired
// instruction is one sample per cycle — exactly the per-cycle current
// waveform a shunt resistor on the core rail would show.
//
// The sample model is switching activity plus static draw. Dynamic
// current is proportional to the toggled capacitance of the cycle:
// the Hamming distance of the destination-register writeback (flop
// toggles), the Hamming weight of data driven onto the interconnect,
// the toggles on the address bus between consecutive accesses (which
// subsumes cache-line-to-line traffic — line index bits are address
// bits), and a per-byte transfer cost. Static draw is the
// voltage-proportional leakage of the core and memory domains, read
// from the rails at Arm time so undervolted captures sit on a visibly
// lower baseline. All activity terms are integer popcounts accumulated
// exactly; the single float32 rounding per term happens in one fixed
// order, which is what makes trace bytes reproducible across
// architectures and GOMAXPROCS settings.
//
// Cost discipline matches the glitcher: a disarmed capturer costs the
// CPU one nil check per instruction and the bus one nil check per
// access. The armed emit path is direct field arithmetic on a shared
// isa.TraceSink — no interface dispatch — and allocation-free (samples
// land in a preallocated arena by cursor bump), pinned statically by
// //voltvet:hotpath and dynamically by TestStepTraceArmedZeroAlloc.
// Capture state composes into isa.CPUState and therefore into
// soc.Snapshot, so per-trial captures fork off copy-on-write snapshots
// like glitched trials do.
package trace

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/power"
	"repro/internal/soc"
)

// Model gains. The absolute scale is arbitrary (normalized current
// units); what matters for SPA/CPA is that the data-dependent term is
// linear in toggled bits and the static term tracks rail voltage.
const (
	// The dynamic gain — current per toggled/driven bit — is fixed at
	// 1: one unit per popcount, applied implicitly (a multiply by 1.0
	// on the emit path would cost a float op and change nothing).
	//
	// gainStaticCore/Mem are the per-volt static draws of the two
	// SRAM-bearing domains (the VDD_IO rail carries no SRAM and is
	// omitted). At BCM2711 nominals (0.80 V core, 1.10 V mem) the
	// quiescent baseline is 0.40 + 0.22 = 0.62 units.
	gainStaticCore float32 = 0.5
	gainStaticMem  float32 = 0.2
)

// Capturer records one power trace per Arm/Disarm cycle from the core
// it is bound to. It owns an isa.TraceSink — the shared sample buffer
// the retire, writeback, and bus taps write into directly — and
// implements isa.TraceProbe so capture state composes into snapshots.
// Arm attaches the sink at all three tap points; Disarm detaches it.
type Capturer struct {
	//voltvet:nosnap attach-time wiring rebound by RestoreState; not recorded state
	soc  *soc.SoC
	//voltvet:nosnap attach-time wiring rebound by RestoreState; not recorded state
	cpu  *isa.CPU
	//voltvet:nosnap attach-time wiring rebound by RestoreState; not recorded state
	regs *soc.RegFile
	// coreDom/memDom are the rails the static-draw term reads at Arm.
	//voltvet:nosnap rail bindings read at Arm; attach-time wiring, not trial state
	coreDom, memDom *power.Domain

	armed bool
	// sink holds the arena, cursor, and activity accumulators. It lives
	// in the capturer by value; the taps hold a pointer while armed.
	sink isa.TraceSink
}

var _ isa.TraceProbe = (*Capturer)(nil)

// New binds a capturer to core `core` of s with an arena of `samples`
// samples. The capturer starts disarmed and costs nothing until Arm.
func New(s *soc.SoC, core int, samples int) (*Capturer, error) {
	if core < 0 || core >= len(s.Cores) {
		return nil, fmt.Errorf("trace: core %d out of range", core)
	}
	if samples <= 0 {
		return nil, fmt.Errorf("trace: arena must hold at least one sample, got %d", samples)
	}
	c := &Capturer{
		soc:     s,
		cpu:     s.Cores[core].CPU,
		regs:    s.Cores[core].RegFile,
		coreDom: s.CoreDom,
		memDom:  s.MemDom,
	}
	c.sink.Buf = make([]float32, samples)
	return c, nil
}

// Arm starts a capture: the arena cursor rewinds, the static-draw term
// is resolved from the live rails, and the sink attaches to the retire,
// writeback, and bus taps. While armed, the SoC dispatcher single-steps
// the traced core (superblock batching would merge fetch traffic across
// a block), so only armed windows pay the per-instruction path.
func (c *Capturer) Arm() {
	c.armed = true
	c.sink.N = 0
	c.sink.BusAct = 0
	c.sink.LastAddr = 0
	c.sink.Static = staticDraw(c.coreDom.Volts(), c.memDom.Volts())
	c.cpu.Probe = c
	c.cpu.Sink = &c.sink
	c.soc.SetTraceSink(&c.sink)
	c.regs.SetTraceSink(&c.sink)
}

// Disarm stops the capture and detaches the sink from all taps. The
// recorded samples stay readable through Samples until the next Arm.
// Disarming a capturer another capturer has superseded leaves the
// active one attached.
func (c *Capturer) Disarm() {
	c.armed = false
	if c.cpu.Probe != c {
		return
	}
	c.cpu.Probe = nil
	c.cpu.Sink = nil
	c.soc.SetTraceSink(nil)
	c.regs.SetTraceSink(nil)
}

// staticDraw folds the two rail voltages into the per-sample static
// term. One rounding per term, in fixed order: the explicit conversions
// and single-op statements keep the float pipeline FMA-free, so the
// term — and with it every trace byte — is bit-stable across runs and
// architectures.
func staticDraw(coreVolts, memVolts float64) float32 {
	stat := float32(coreVolts) * gainStaticCore
	stat = stat + float32(memVolts)*gainStaticMem
	return stat
}

// Armed reports whether a capture is in progress.
func (c *Capturer) Armed() bool { return c.armed }

// Samples returns the recorded trace: one float32 per instruction
// retired while armed, in retirement order. The slice aliases the
// arena; it is valid until the next Arm.
func (c *Capturer) Samples() []float32 { return c.sink.Buf[:c.sink.N] }

// Capacity returns the arena size in samples.
func (c *Capturer) Capacity() int { return len(c.sink.Buf) }

// capState is the capturer's snapshot payload: everything a restore
// must rewind for a traced trial to fork deterministically.
type capState struct {
	armed    bool
	n        int
	busAct   int
	lastAddr uint64
	static   float32
	samples  []float32
}

// CaptureState implements isa.TraceProbe.
func (c *Capturer) CaptureState() any {
	return &capState{
		armed:    c.armed,
		n:        c.sink.N,
		busAct:   c.sink.BusAct,
		lastAddr: c.sink.LastAddr,
		static:   c.sink.Static,
		samples:  append([]float32(nil), c.sink.Buf[:c.sink.N]...),
	}
}

// RestoreState implements isa.TraceProbe. A nil state resets the
// capturer to its disarmed baseline. Restoring an armed state
// re-attaches the sink at every tap point, so a trial forked from an
// armed snapshot keeps capturing mid-trace; the captured static term
// is restored verbatim rather than re-read from the rails, because it
// is part of the trace the snapshot froze.
func (c *Capturer) RestoreState(st any) {
	if st == nil {
		c.armed = false
		c.sink.N = 0
		c.sink.BusAct = 0
		c.sink.LastAddr = 0
		c.detach()
		return
	}
	s := st.(*capState)
	c.armed = s.armed
	c.sink.N = s.n
	copy(c.sink.Buf, s.samples)
	c.sink.BusAct = s.busAct
	c.sink.LastAddr = s.lastAddr
	c.sink.Static = s.static
	if s.armed {
		c.cpu.Sink = &c.sink
		c.soc.SetTraceSink(&c.sink)
		c.regs.SetTraceSink(&c.sink)
	} else {
		c.detach()
	}
}

func (c *Capturer) detach() {
	c.cpu.Sink = nil
	c.soc.SetTraceSink(nil)
	c.regs.SetTraceSink(nil)
}
