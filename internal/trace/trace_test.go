package trace_test

import (
	"testing"

	"repro/internal/aes"
	"repro/internal/power"
	"repro/internal/sim"
	"repro/internal/soc"
	"repro/internal/trace"
)

const (
	tStateAddr = uint64(0x40000)
	tKeyAddr   = uint64(0x41000)
	tSBoxAddr  = uint64(0x42000)
	tOutAddr   = uint64(0x43000)
)

var tKey = [16]byte{
	0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
	0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c,
}

// victimSoC boots a BCM2711 into the AES victim with data staged and a
// plaintext written, ready to run.
func victimSoC(tb testing.TB, rounds int, pt [16]byte) (*soc.SoC, *trace.AESVictim) {
	return victimSoCCached(tb, rounds, pt, true)
}

func victimSoCCached(tb testing.TB, rounds int, pt [16]byte, caches bool) (*soc.SoC, *trace.AESVictim) {
	tb.Helper()
	env := sim.NewEnv()
	spec := soc.BCM2711()
	s, err := soc.New(env, spec, soc.Options{}, 0xC0FFEE)
	if err != nil {
		tb.Fatal(err)
	}
	power.NewBenchSupply(env, "bench-core", spec.CoreVolts, 10).AttachTo(s.CoreDom)
	power.NewBenchSupply(env, "bench-mem", spec.MemVolts, 10).AttachTo(s.MemDom)
	v, err := trace.BuildAESVictim(soc.PayloadBase, tStateAddr, tKeyAddr, tSBoxAddr, tOutAddr, rounds)
	if err != nil {
		tb.Fatal(err)
	}
	if err := s.Boot(&soc.BootImage{Words: v.Words, EnableCaches: caches}); err != nil {
		tb.Fatal(err)
	}
	if err := v.StageData(s, tKey); err != nil {
		tb.Fatal(err)
	}
	s.WriteDRAM(int(tStateAddr), pt[:])
	return s, v
}

// TestVictimComputesSubBytes: the victim's output buffer ends the run
// holding sbox[pt[i] ^ rk_last[i]] — the last round's AddRoundKey +
// SubBytes of the (never-overwritten) plaintext. This is the ground
// truth the CPA hypothesis model is built on.
func TestVictimComputesSubBytes(t *testing.T) {
	var pt [16]byte
	for i := range pt {
		pt[i] = byte(0x11 * i)
	}
	// Uncached, so the victim's stores land in DRAM where ReadDRAM
	// (which bypasses the cache) can see them.
	s, v := victimSoCCached(t, 10, pt, false)
	if err := s.RunCore(0, uint64(v.RunLength())+8); err != nil {
		t.Fatal(err)
	}
	sched, err := aes.ExpandKey128(tKey[:])
	if err != nil {
		t.Fatal(err)
	}
	out := s.ReadDRAM(int(tOutAddr), 16)
	for i := 0; i < 16; i++ {
		want := aes.SBox(pt[i] ^ sched[16*(v.Rounds-1)+i])
		if out[i] != want {
			t.Errorf("out[%d] = %#02x, want sbox[pt^rk9] = %#02x", i, out[i], want)
		}
	}
}

// TestCaptureSampleCount: an armed capturer with a roomy arena records
// exactly one sample per retired instruction, and a short arena clips
// without disturbing the run.
func TestCaptureSampleCount(t *testing.T) {
	s, v := victimSoC(t, 2, [16]byte{})
	c, err := trace.New(s, 0, v.RunLength()+100)
	if err != nil {
		t.Fatal(err)
	}
	c.Arm()
	if err := s.RunCore(0, uint64(v.RunLength())+8); err != nil {
		t.Fatal(err)
	}
	c.Disarm()
	if got := len(c.Samples()); got != v.RunLength() {
		t.Fatalf("captured %d samples, victim retired %d", got, v.RunLength())
	}

	s2, v2 := victimSoC(t, 2, [16]byte{})
	c2, err := trace.New(s2, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	c2.Arm()
	if err := s2.RunCore(0, uint64(v2.RunLength())+8); err != nil {
		t.Fatal(err)
	}
	c2.Disarm()
	if got := len(c2.Samples()); got != 10 {
		t.Fatalf("clipped capture recorded %d samples, want arena size 10", got)
	}
	if !s2.Cores[0].CPU.Halted {
		t.Fatal("victim did not halt with a clipped arena")
	}
}

// TestCaptureDoesNotPerturb: running the victim with an armed capturer
// yields the same architectural outcome — output buffer and final
// register file — as running without one.
func TestCaptureDoesNotPerturb(t *testing.T) {
	var pt [16]byte
	for i := range pt {
		pt[i] = byte(0xA5 ^ i)
	}
	run := func(armed bool) ([]byte, [31]uint64) {
		s, v := victimSoC(t, 10, pt)
		if armed {
			c, err := trace.New(s, 0, v.RunLength())
			if err != nil {
				t.Fatal(err)
			}
			c.Arm()
			defer c.Disarm()
		}
		if err := s.RunCore(0, uint64(v.RunLength())+8); err != nil {
			t.Fatal(err)
		}
		var regs [31]uint64
		for i := range regs {
			regs[i] = s.Cores[0].CPU.X(i)
		}
		return s.ReadDRAM(int(tOutAddr), 16), regs
	}
	plainOut, plainRegs := run(false)
	armedOut, armedRegs := run(true)
	if string(plainOut) != string(armedOut) {
		t.Fatalf("armed capture changed the victim's output:\nplain %x\narmed %x", plainOut, armedOut)
	}
	if plainRegs != armedRegs {
		t.Fatalf("armed capture changed the final register file")
	}
}

// TestCaptureDeterministic: two identically-built rigs capture
// bit-identical traces.
func TestCaptureDeterministic(t *testing.T) {
	var pt [16]byte
	for i := range pt {
		pt[i] = byte(3 * i)
	}
	capture := func() []float32 {
		s, v := victimSoC(t, 3, pt)
		c, err := trace.New(s, 0, v.RunLength())
		if err != nil {
			t.Fatal(err)
		}
		c.Arm()
		if err := s.RunCore(0, uint64(v.RunLength())+8); err != nil {
			t.Fatal(err)
		}
		c.Disarm()
		out := make([]float32, len(c.Samples()))
		copy(out, c.Samples())
		return out
	}
	a, b := capture(), capture()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sample %d differs across identical rigs: %g vs %g", i, a[i], b[i])
		}
	}
}

// TestArmDisarmDetach: Disarm detaches both hooks; a foreign probe is
// left alone.
func TestArmDisarmDetach(t *testing.T) {
	s, _ := victimSoC(t, 1, [16]byte{})
	cpu := s.Cores[0].CPU
	c, err := trace.New(s, 0, 64)
	if err != nil {
		t.Fatal(err)
	}
	c.Arm()
	if cpu.Probe == nil {
		t.Fatal("Arm did not attach the CPU probe")
	}
	if !c.Armed() {
		t.Fatal("Armed() false after Arm")
	}
	c.Disarm()
	if cpu.Probe != nil {
		t.Fatal("Disarm left the CPU probe attached")
	}
	if c.Armed() {
		t.Fatal("Armed() true after Disarm")
	}

	c2, err := trace.New(s, 0, 64)
	if err != nil {
		t.Fatal(err)
	}
	c.Arm()
	c2.Arm() // takes over
	c.Disarm()
	if cpu.Probe != c2 {
		t.Fatal("Disarm of a superseded capturer removed the active one")
	}
	c2.Disarm()
}

// TestCaptureSnapshotRestore: a snapshot taken mid-capture restores the
// capture cursor along with the machine, so a restored run re-records
// the same tail it recorded the first time.
func TestCaptureSnapshotRestore(t *testing.T) {
	s, v := victimSoC(t, 2, [16]byte{1, 2, 3})
	c, err := trace.New(s, 0, v.RunLength())
	if err != nil {
		t.Fatal(err)
	}
	c.Arm()
	cpu := s.Cores[0].CPU
	for i := 0; i < 40; i++ {
		if err := cpu.Step(); err != nil {
			t.Fatal(err)
		}
	}
	st := s.CaptureSnapshot()
	finish := func() []float32 {
		if err := s.RunCore(0, uint64(v.RunLength())); err != nil {
			t.Fatal(err)
		}
		out := make([]float32, len(c.Samples()))
		copy(out, c.Samples())
		return out
	}
	first := finish()
	s.RestoreSnapshot(st)
	if got := len(c.Samples()); got != 40 {
		t.Fatalf("restore rewound capture cursor to %d, want 40", got)
	}
	second := finish()
	if len(first) != len(second) {
		t.Fatalf("restored run captured %d samples, first run %d", len(second), len(first))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("sample %d differs after snapshot restore: %g vs %g", i, first[i], second[i])
		}
	}
}
