package trace_test

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/power"
	"repro/internal/sim"
	"repro/internal/soc"
	"repro/internal/trace"
)

// steppingBench mirrors internal/glitch's harness: a cached,
// never-halting load/increment/store loop warmed to steady state, with
// a trace capturer constructed against core 0. The capturer goes
// through one arm/disarm cycle so the CPU has seen attach and detach;
// callers arm (or not) on top of that.
func steppingBench(tb testing.TB, arena int) (*soc.SoC, *trace.Capturer) {
	tb.Helper()
	env := sim.NewEnv()
	spec := soc.BCM2711()
	s, err := soc.New(env, spec, soc.Options{}, 0xC0FFEE)
	if err != nil {
		tb.Fatal(err)
	}
	power.NewBenchSupply(env, "bench-core", spec.CoreVolts, 10).AttachTo(s.CoreDom)
	power.NewBenchSupply(env, "bench-mem", spec.MemVolts, 10).AttachTo(s.MemDom)
	words, err := isa.Assemble(soc.PayloadBase, `
        LDIMM X1, #0x100000
loop:   LDR X2, [X1]
        ADDI X2, X2, #1
        STR X2, [X1]
        B loop
    `)
	if err != nil {
		tb.Fatal(err)
	}
	if err := s.Boot(&soc.BootImage{Words: words, EnableCaches: true}); err != nil {
		tb.Fatal(err)
	}
	cpu := s.Cores[0].CPU
	c, err := trace.New(s, 0, arena)
	if err != nil {
		tb.Fatal(err)
	}
	c.Arm()
	c.Disarm()
	for i := 0; i < 256; i++ {
		if err := cpu.Step(); err != nil {
			tb.Fatal(err)
		}
	}
	return s, c
}

// BenchmarkCPUStepTraceDisarmed is BenchmarkCPUStep with the trace
// capturer present but disarmed. The acceptance bar: within noise of
// the plain BenchmarkCPUStep number — the disarmed hook is one nil
// check on the retire path and one on the bus path.
func BenchmarkCPUStepTraceDisarmed(b *testing.B) {
	s, _ := steppingBench(b, 1<<16)
	cpu := s.Cores[0].CPU
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := cpu.Step(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "instr/s")
}

// BenchmarkCPUStepTraceArmed measures the armed per-step cost: Hamming
// weights, rail reads, and the arena store, on top of the plain step.
// The arena is re-armed whenever it fills so the steady-state path
// (bounded store) is what dominates the measurement.
func BenchmarkCPUStepTraceArmed(b *testing.B) {
	const arena = 1 << 16
	s, c := steppingBench(b, arena)
	cpu := s.Cores[0].CPU
	c.Arm()
	defer c.Disarm()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i&(arena-1) == 0 {
			c.Arm() // rewind the full arena; amortized to nothing
		}
		if err := cpu.Step(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "instr/s")
}

// BenchmarkTraceCapture measures end-to-end capture throughput: one
// full AES-victim trial (restore-free straight run) per iteration,
// reported in samples per second.
func BenchmarkTraceCapture(b *testing.B) {
	var pt [16]byte
	s, v := victimSoC(b, 10, pt)
	c, err := trace.New(s, 0, v.RunLength())
	if err != nil {
		b.Fatal(err)
	}
	cpu := s.Cores[0].CPU
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cpu.Reset(v.Entry)
		c.Arm()
		if err := s.RunCore(0, uint64(v.RunLength())+8); err != nil {
			b.Fatal(err)
		}
		c.Disarm()
	}
	b.ReportMetric(float64(b.N*v.RunLength())/b.Elapsed().Seconds(), "samples/s")
}

// TestStepTraceDisarmedZeroAlloc pins the disarmed contract: steady-
// state Step with a constructed-and-disarmed capturer allocates
// nothing.
func TestStepTraceDisarmedZeroAlloc(t *testing.T) {
	s, _ := steppingBench(t, 1<<16)
	cpu := s.Cores[0].CPU
	var stepErr error
	allocs := testing.AllocsPerRun(10000, func() {
		if err := cpu.Step(); err != nil {
			stepErr = err
		}
	})
	if stepErr != nil {
		t.Fatal(stepErr)
	}
	if allocs != 0 {
		t.Fatalf("disarmed-capturer Step allocates %.1f times per instruction, want 0", allocs)
	}
}

// TestStepTraceArmedZeroAlloc pins the armed contract: the whole
// sample-emit path — retire probe, bus probe, Hamming arithmetic, rail
// reads, arena store — allocates nothing in steady state.
func TestStepTraceArmedZeroAlloc(t *testing.T) {
	s, c := steppingBench(t, 1<<16)
	cpu := s.Cores[0].CPU
	c.Arm()
	defer c.Disarm()
	var stepErr error
	allocs := testing.AllocsPerRun(10000, func() {
		if err := cpu.Step(); err != nil {
			stepErr = err
		}
	})
	if stepErr != nil {
		t.Fatal(stepErr)
	}
	if allocs != 0 {
		t.Fatalf("armed-capturer Step allocates %.1f times per instruction, want 0", allocs)
	}
}
