package trace_test

import (
	"bytes"
	"testing"

	"repro/internal/trace"
)

func TestEncodeDecodeSetRoundTrip(t *testing.T) {
	traces := [][]float32{
		{1.5, -2.25, 0, 3e-9},
		{0.625, 1e9, -0.0, 42},
	}
	aux := [][]byte{{0xAA, 0xBB}, {0x01, 0x02}}
	blob, err := trace.EncodeSet(traces, aux)
	if err != nil {
		t.Fatal(err)
	}
	set, err := trace.DecodeSet(blob)
	if err != nil {
		t.Fatal(err)
	}
	if len(set.Samples) != 2 {
		t.Fatalf("decoded %d traces, want 2", len(set.Samples))
	}
	for i := range traces {
		if !bytes.Equal(set.Aux[i], aux[i]) {
			t.Errorf("aux %d did not round-trip: %x vs %x", i, set.Aux[i], aux[i])
		}
		for j := range traces[i] {
			if set.Samples[i][j] != traces[i][j] {
				t.Errorf("sample [%d][%d] = %g, want %g", i, j, set.Samples[i][j], traces[i][j])
			}
		}
	}
}

func TestEncodeSetNoAux(t *testing.T) {
	blob, err := trace.EncodeSet([][]float32{{1, 2, 3}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	set, err := trace.DecodeSet(blob)
	if err != nil {
		t.Fatal(err)
	}
	if set.Aux[0] != nil {
		t.Fatalf("aux-free set decoded aux %x", set.Aux[0])
	}
}

func TestEncodeSetRejectsRagged(t *testing.T) {
	if _, err := trace.EncodeSet([][]float32{{1, 2}, {1}}, nil); err == nil {
		t.Fatal("ragged traces encoded without error")
	}
	if _, err := trace.EncodeSet([][]float32{{1}, {2}}, [][]byte{{1}}); err == nil {
		t.Fatal("aux/trace count mismatch encoded without error")
	}
	if _, err := trace.EncodeSet([][]float32{{1}, {2}}, [][]byte{{1}, {1, 2}}); err == nil {
		t.Fatal("ragged aux encoded without error")
	}
	if _, err := trace.EncodeSet(nil, nil); err == nil {
		t.Fatal("empty set encoded without error")
	}
}

func TestDecodeSetRejectsCorrupt(t *testing.T) {
	good, err := trace.EncodeSet([][]float32{{1, 2, 3}}, [][]byte{{9}})
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"short":     good[:8],
		"magic":     append([]byte("XXXX"), good[4:]...),
		"truncated": good[:len(good)-1],
		"padded":    append(append([]byte(nil), good...), 0),
	}
	for name, blob := range cases {
		if _, err := trace.DecodeSet(blob); err == nil {
			t.Errorf("%s blob decoded without error", name)
		}
	}
	bad := append([]byte(nil), good...)
	bad[4] = 99 // version
	if _, err := trace.DecodeSet(bad); err == nil {
		t.Error("future-version blob decoded without error")
	}
}

// TestVictimLayout pins the sample-index geometry the experiments
// depend on: leak samples sit inside their byte group, round starts
// advance by one round length, and everything fits the run length.
func TestVictimLayout(t *testing.T) {
	v, err := trace.BuildAESVictim(0x80000, 0x1000, 0x2000, 0x3000, 0x4000, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(v.Words) == 0 || v.Rounds != 10 {
		t.Fatalf("bad victim: %d words, %d rounds", len(v.Words), v.Rounds)
	}
	if v.RunLength() <= v.RoundStart(9) {
		t.Fatalf("run length %d does not cover round 9 start %d", v.RunLength(), v.RoundStart(9))
	}
	for r := 0; r < 10; r++ {
		for i := 0; i < 16; i++ {
			leak := v.LeakSample(r, i)
			if leak <= v.RoundStart(r) || leak >= v.RunLength() {
				t.Fatalf("leak sample (%d,%d) = %d outside the run", r, i, leak)
			}
		}
	}
	if d := v.RoundStart(1) - v.RoundStart(0); d != v.RoundStart(2)-v.RoundStart(1) {
		t.Fatalf("round lengths differ: %d vs %d", d, v.RoundStart(2)-v.RoundStart(1))
	}
	if v.QuietGap() <= 0 {
		t.Fatal("victim has no quiet gap")
	}
	if _, err := trace.BuildAESVictim(0x80000, 0x1000, 0x2000, 0x3000, 0x4000, 99); err == nil {
		t.Fatal("oversized round count accepted")
	}
}
