// The AES victim the side-channel experiments trace: a bare-metal
// VBA64 payload that runs the leaky half of an AES-128 round —
// AddRoundKey then the table-lookup SubBytes — over a 16-byte state,
// once per round key of the real expanded schedule. The round-0 S-box
// writeback is the classic CPA target: its Hamming weight is
// HW(SBox(plaintext[i] ^ key[i])), a function of one key byte and one
// known plaintext byte, so correlating hypothesis weights against
// captured traces recovers the master key byte by byte. Each round is
// followed by a deliberate quiet gap (NOPs: no writeback, no bus), so
// the ten rounds show up as ten activity bursts — the SPA structure.
//
// Control flow is data-independent (a counted round loop, no
// data-dependent branches), so every trial retires the same instruction
// sequence and traces align sample-for-sample with no realignment.
package trace

import (
	"fmt"
	"strings"

	"repro/internal/aes"
	"repro/internal/isa"
	"repro/internal/soc"
)

// Victim layout constants: instruction counts that locate samples
// within a captured trace. These are properties of the assembly below;
// the builder cross-checks them against the assembled word count.
const (
	// victimPreamble is the pointer/counter setup before round 0 (five
	// LDIMMs — state, key cursor, S-box base, output buffer, round
	// counter — of 4 instructions each).
	victimPreamble = 5 * 4
	// victimPerByte is the instruction count of one byte's
	// AddRoundKey+SubBytes group.
	victimPerByte = 7
	// victimLeakOff is the index of the S-box load within a byte group
	// (LDRB X7, [X6] — the leaky writeback).
	victimLeakOff = 5
	// victimQuietNOPs is the inter-round gap length. It is deliberately
	// much wider than any intra-round activity dip (a byte group never
	// idles for more than a couple of samples), so SPA can tell round
	// boundaries from micro-structure by gap width alone.
	victimQuietNOPs = 32
	// victimRoundTail is the loop bookkeeping after the 16 byte groups:
	// key-cursor bump, counter decrement, the quiet gap, and the
	// back-branch.
	victimRoundTail = 2 + victimQuietNOPs + 1
	// victimRoundLen is the full per-round instruction count.
	victimRoundLen = 16*victimPerByte + victimRoundTail
)

// AESVictim is an assembled side-channel victim plus its data layout.
type AESVictim struct {
	// Words is the payload image; Entry is its load/entry address.
	Words []uint32
	Entry uint64
	// Rounds is the number of AddRoundKey+SubBytes rounds (≤ 11, the
	// AES-128 schedule depth).
	Rounds int
	// StateAddr holds the 16-byte state; trials write the plaintext
	// here before running. KeyAddr holds the expanded round keys,
	// SBoxAddr the 256-byte S-box table (see StageData), and OutAddr
	// the 16-byte output buffer each round overwrites. The victim only
	// ever *reads* StateAddr, so a warm-up run leaves the staged
	// plaintext intact (and its cache line clean) for the measured run.
	StateAddr, KeyAddr, SBoxAddr, OutAddr uint64
}

// BuildAESVictim assembles the victim at base with the given data
// layout. The three data addresses must each fit the assembler's
// unsigned byte-offset addressing (the payload addresses them with
// offsets 0..15 / 0..255 off a register base).
func BuildAESVictim(base, stateAddr, keyAddr, sboxAddr, outAddr uint64, rounds int) (*AESVictim, error) {
	if rounds < 1 || rounds > aes.ScheduleSize128/16 {
		return nil, fmt.Errorf("trace: rounds must be 1..%d, got %d", aes.ScheduleSize128/16, rounds)
	}
	var b strings.Builder
	fmt.Fprintf(&b, `
		; AES side-channel victim: per round, state[i] = sbox[state[i] ^ rk[i]]
		LDIMM X0, #%#x          ; state (plaintext staged per trial)
		LDIMM X1, #%#x          ; round-key cursor
		LDIMM X2, #%#x          ; S-box table
		LDIMM X8, #%#x          ; output buffer
		LDIMM X9, #%d           ; round counter
round_loop:
`, stateAddr, keyAddr, sboxAddr, outAddr, rounds)
	for i := 0; i < 16; i++ {
		fmt.Fprintf(&b, `
		LDRB X4, [X0, #%d]      ; state byte
		LDRB X5, [X1, #%d]      ; key byte
		EOR X4, X4, X5          ; AddRoundKey
		ADD X6, X2, X4
		MOVZ X7, #0             ; zero the bus flop: HD(0, sbox out) = HW
		LDRB X7, [X6]           ; SubBytes <- the CPA-target writeback
		STRB X7, [X8, #%d]
`, i, i, i)
	}
	b.WriteString(`
		ADDI X1, X1, #16        ; next round key
		SUBI X9, X9, #1
`)
	for i := 0; i < victimQuietNOPs; i++ {
		b.WriteString("\t\tNOP\n")
	}
	b.WriteString(`
		CBNZ X9, round_loop
		HLT #0
`)
	words, err := isa.Assemble(base, b.String())
	if err != nil {
		return nil, fmt.Errorf("trace: assembling AES victim: %w", err)
	}
	if len(words) != victimPreamble+victimRoundLen+1 {
		return nil, fmt.Errorf("trace: victim layout drifted: %d words, want %d",
			len(words), victimPreamble+victimRoundLen+1)
	}
	return &AESVictim{
		Words:     words,
		Entry:     base,
		Rounds:    rounds,
		StateAddr: stateAddr,
		KeyAddr:   keyAddr,
		SBoxAddr:  sboxAddr,
		OutAddr:   outAddr,
	}, nil
}

// RunLength is the total retired-instruction count of one victim run —
// the natural capture-arena size (one sample per instruction).
func (v *AESVictim) RunLength() int {
	return victimPreamble + v.Rounds*victimRoundLen + 1
}

// LeakSample returns the trace sample index of the S-box writeback for
// byte `i` of round `r` — where the CPA peak for that byte lands when
// capture is armed at the victim's entry.
func (v *AESVictim) LeakSample(r, i int) int {
	return victimPreamble + r*victimRoundLen + i*victimPerByte + victimLeakOff
}

// RoundStart returns the sample index of round r's first instruction,
// the boundary SPA peak-matching should find.
func (v *AESVictim) RoundStart(r int) int {
	return victimPreamble + r*victimRoundLen
}

// QuietGap is the inter-round quiet-gap width in samples — the scale
// separating true round boundaries from intra-round activity dips.
func (v *AESVictim) QuietGap() int { return victimQuietNOPs }

// StageData writes the victim's lookup data into DRAM: the S-box table
// and the full expanded schedule of key (round r of the loop consumes
// schedule bytes 16r..16r+15). Call once after boot, before capturing;
// the per-trial plaintext goes to StateAddr separately.
func (v *AESVictim) StageData(s *soc.SoC, key [16]byte) error {
	sched, err := aes.ExpandKey128(key[:])
	if err != nil {
		return err
	}
	sbox := make([]byte, 256)
	for i := range sbox {
		sbox[i] = aes.SBox(byte(i))
	}
	s.WriteDRAM(int(v.KeyAddr), sched)
	s.WriteDRAM(int(v.SBoxAddr), sbox)
	return nil
}
