package trace

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Binary trace-set format: the `trace` artifact kind. Multi-MB trace
// blobs ride the campaign store and the fabric as opaque bytes, so the
// format is fixed-endian, self-describing, and free of floats-as-text:
//
//	offset  size  field
//	0       4     magic "VBTR"
//	4       2     version (LE, currently 1)
//	6       2     aux bytes per trace (LE; e.g. 16 for an AES plaintext)
//	8       4     trace count (LE)
//	12      4     samples per trace (LE)
//	16      —     per trace: aux bytes, then samples as IEEE-754
//	              binary32 little-endian
//
// Every trace carries the same sample count and aux size; the encoder
// rejects ragged inputs instead of padding, because a ragged set means
// the capture rig misbehaved (the interpreter's fixed control flow
// makes every trial the same length).

const (
	setMagic   = "VBTR"
	setVersion = 1
	headerLen  = 16
)

// Set is a decoded trace set.
type Set struct {
	// Samples holds one row per trace.
	Samples [][]float32
	// Aux holds the per-trace auxiliary record (nil rows when the set
	// was encoded with no aux data) — for the AES captures, the
	// 16-byte plaintext of the trial.
	Aux [][]byte
}

// EncodeSet serializes traces (and optional per-trace aux records) into
// the VBTR format. aux may be nil; when present it must match traces
// row for row, every row the same length.
func EncodeSet(traces [][]float32, aux [][]byte) ([]byte, error) {
	if len(traces) == 0 {
		return nil, fmt.Errorf("trace: empty set")
	}
	nsamples := len(traces[0])
	for i, t := range traces {
		if len(t) != nsamples {
			return nil, fmt.Errorf("trace: ragged set: trace %d has %d samples, trace 0 has %d", i, len(t), nsamples)
		}
	}
	auxBytes := 0
	if aux != nil {
		if len(aux) != len(traces) {
			return nil, fmt.Errorf("trace: %d aux records for %d traces", len(aux), len(traces))
		}
		auxBytes = len(aux[0])
		for i, a := range aux {
			if len(a) != auxBytes {
				return nil, fmt.Errorf("trace: ragged aux: record %d has %d bytes, record 0 has %d", i, len(a), auxBytes)
			}
		}
	}
	if auxBytes > math.MaxUint16 {
		return nil, fmt.Errorf("trace: aux record too large (%d bytes)", auxBytes)
	}
	out := make([]byte, headerLen, headerLen+len(traces)*(auxBytes+4*nsamples))
	copy(out, setMagic)
	binary.LittleEndian.PutUint16(out[4:], setVersion)
	binary.LittleEndian.PutUint16(out[6:], uint16(auxBytes))
	binary.LittleEndian.PutUint32(out[8:], uint32(len(traces)))
	binary.LittleEndian.PutUint32(out[12:], uint32(nsamples))
	var w [4]byte
	for i, t := range traces {
		if aux != nil {
			out = append(out, aux[i]...)
		}
		for _, s := range t {
			binary.LittleEndian.PutUint32(w[:], math.Float32bits(s))
			out = append(out, w[:]...)
		}
	}
	return out, nil
}

// DecodeSet parses a VBTR blob.
func DecodeSet(b []byte) (*Set, error) {
	if len(b) < headerLen || string(b[:4]) != setMagic {
		return nil, fmt.Errorf("trace: not a VBTR trace set")
	}
	if v := binary.LittleEndian.Uint16(b[4:]); v != setVersion {
		return nil, fmt.Errorf("trace: unsupported VBTR version %d", v)
	}
	auxBytes := int(binary.LittleEndian.Uint16(b[6:]))
	ntraces := int(binary.LittleEndian.Uint32(b[8:]))
	nsamples := int(binary.LittleEndian.Uint32(b[12:]))
	want := headerLen + ntraces*(auxBytes+4*nsamples)
	if len(b) != want {
		return nil, fmt.Errorf("trace: VBTR size %d, want %d for %d×%d (+%dB aux)", len(b), want, ntraces, nsamples, auxBytes)
	}
	set := &Set{
		Samples: make([][]float32, ntraces),
		Aux:     make([][]byte, ntraces),
	}
	off := headerLen
	for i := 0; i < ntraces; i++ {
		if auxBytes > 0 {
			set.Aux[i] = append([]byte(nil), b[off:off+auxBytes]...)
			off += auxBytes
		}
		row := make([]float32, nsamples)
		for j := range row {
			row[j] = math.Float32frombits(binary.LittleEndian.Uint32(b[off:]))
			off += 4
		}
		set.Samples[i] = row
	}
	return set, nil
}
