// Package core implements the paper's contribution: the Volt Boot attack
// orchestrator (§5, §6) and the traditional cold boot orchestrator it is
// contrasted with (§3).
//
// Volt Boot executes the four steps of §6.1 against a board built by
// internal/board:
//
//  1. identify the target power domain and its exposed PCB test pad
//     (Table 3 data carried by the device spec),
//  2. attach an external bench supply to the pad at the domain's nominal
//     voltage,
//  3. disconnect main power — the probed domain alone stays up — wait out
//     the manual replug, reconnect, and boot a bare-metal extraction
//     payload (or use the JTAG window on internally booting parts),
//  4. hand the exfiltrated images to analysis.
//
// The cold boot orchestrator runs the same extraction after a thermal
// soak and an unprobed power cycle, demonstrating §3's negative result:
// on-chip SRAM does not survive realistic power gaps at any survivable
// temperature.
package core

import (
	"fmt"

	"repro/internal/board"
	"repro/internal/power"
	"repro/internal/sim"
	"repro/internal/soc"
)

// ProbeSpec describes the attacker's bench supply.
type ProbeSpec struct {
	// MaxAmps is the supply's current limit. The paper uses a >3 A bench
	// supply; the ablation sweeps this down until the disconnect surge
	// defeats the attack.
	MaxAmps float64
	// PadName overrides the Table 3 default pad when non-empty.
	PadName string
}

// DefaultProbe matches the paper's apparatus.
func DefaultProbe() ProbeSpec { return ProbeSpec{MaxAmps: 3.5} }

// AttackConfig fixes the non-payload parameters of an attack run.
type AttackConfig struct {
	Probe ProbeSpec
	// OffTime is how long main power stays disconnected — seconds, for a
	// manual replug (§7: "these operations require more than a few
	// hundred milliseconds").
	OffTime sim.Time
	// MaxInstr bounds the extraction payload's execution.
	MaxInstr uint64
}

// DefaultAttackConfig returns the paper's setup: a 3.5 A probe and a
// two-second power gap.
func DefaultAttackConfig() AttackConfig {
	return AttackConfig{Probe: DefaultProbe(), OffTime: 2 * sim.Second, MaxInstr: 50_000_000}
}

// Step is one entry of the Figure 5 attack-step trace.
type Step struct {
	N    int
	What string
}

func (s Step) String() string { return fmt.Sprintf("step %d: %s", s.N, s.What) }

// CoreCacheDump holds one core's extracted L1 images, sliced per way the
// way the paper reports them (W0, W1, …).
type CoreCacheDump struct {
	Core int
	// L1D[way] and L1I[way] are raw way images.
	L1D [][]byte
	L1I [][]byte
	// L1DTags[way][set] and L1ITags[way][set] are raw tag-RAM entries,
	// populated only by the tag-dumping attack variant. Decode with
	// cache.ParseTagEntry to recover each line's memory address.
	L1DTags [][]uint64
	L1ITags [][]uint64
}

// CacheExtraction is the result of a cache-targeting attack.
type CacheExtraction struct {
	Device string
	Dumps  []CoreCacheDump
	Trace  []Step
}

// RegisterExtraction is the result of a register-targeting attack:
// PerCore[c][v] is vector register v of core c as 16 bytes.
type RegisterExtraction struct {
	Device  string
	PerCore [][][]byte
	Trace   []Step
}

// IRAMExtraction is the result of an iRAM-targeting attack.
type IRAMExtraction struct {
	Device string
	Image  []byte
	Trace  []Step
}

type stepTracer struct {
	env   *sim.Env
	steps []Step
}

func (t *stepTracer) add(format string, args ...any) {
	s := Step{N: len(t.steps) + 1, What: fmt.Sprintf(format, args...)}
	t.steps = append(t.steps, s)
	t.env.Logf("attack", "%s", s)
}

// powerCycle performs §6.1 steps 1–3 up to the reboot: identify the pad,
// attach the probe (nil ProbeSpec.MaxAmps ≤ 0 means "no probe" — the cold
// boot configuration), cut main power, wait, reconnect. It returns the
// attached supply (already detached for zero-amp probes) and the tracer.
func powerCycle(b *board.Board, cfg AttackConfig, tr *stepTracer) (*power.BenchSupply, error) {
	spec := b.Spec()
	pad := spec.TestPad
	if cfg.Probe.PadName != "" {
		pad = cfg.Probe.PadName
	}
	var psu *power.BenchSupply
	if cfg.Probe.MaxAmps > 0 {
		p, err := b.PadByName(pad)
		if err != nil {
			return nil, err
		}
		tr.add("identify target domain %s (%s) behind pad %s at %.2fV",
			p.Domain.Name(), spec.PadDomain, pad, p.Domain.NominalVolts())
		psu = power.NewBenchSupply(b.Env, "bench-psu", 0, cfg.Probe.MaxAmps)
		if err := b.AttachProbe(pad, psu); err != nil {
			return nil, err
		}
		tr.add("attach %.1fA voltage probe to %s at nominal level", cfg.Probe.MaxAmps, pad)
	} else {
		tr.add("no probe attached (cold boot configuration)")
	}
	if psu != nil {
		tr.add("probe carries %.0f mA of the running system's load", psu.CurrentDrawAmps()*1000)
	}
	tr.add("disconnect main power abruptly")
	b.DisconnectMain()
	if psu != nil {
		tr.add("probe current settles to %.0f mA retention draw", psu.CurrentDrawAmps()*1000)
	}
	b.Env.Advance(cfg.OffTime)
	b.ConnectMain()
	tr.add("reconnect main power after %s", cfg.OffTime)
	return psu, nil
}

// extractCaches boots the cache-dump payload, runs it on every core, and
// slices the exfiltrated image.
func extractCaches(b *board.Board, cfg AttackConfig, tr *stepTracer, tags bool) (*CacheExtraction, error) {
	spec := b.Spec()
	img, layout, err := cacheDumpPayload(spec, tags)
	if err != nil {
		return nil, err
	}
	if err := b.SoC.Boot(img); err != nil {
		return nil, fmt.Errorf("core: booting extraction payload: %w", err)
	}
	tr.add("boot bare-metal extraction payload from external media (caches off)")
	if err := b.SoC.RunAllCores(cfg.MaxInstr); err != nil {
		return nil, fmt.Errorf("core: extraction payload: %w", err)
	}
	tr.add("payload dumped L1 RAMs to DRAM via RAMINDEX + DSB/ISB")

	readTags := func(coreBase uint64, off uint64, sets int) []uint64 {
		raw := b.SoC.ReadDRAM(int(coreBase+off), sets*8)
		out := make([]uint64, sets)
		for e := range out {
			for k := 0; k < 8; k++ {
				out[e] |= uint64(raw[e*8+k]) << (8 * k)
			}
		}
		return out
	}

	res := &CacheExtraction{Device: spec.Board}
	for c := 0; c < spec.Cores; c++ {
		dump := CoreCacheDump{Core: c}
		coreBase := DumpBase + uint64(c)*CoreDumpStride
		for w := 0; w < spec.L1D.Ways; w++ {
			off, size := layout.WayRegion(c, false, w)
			dump.L1D = append(dump.L1D, b.SoC.ReadDRAM(int(off), size))
		}
		for w := 0; w < spec.L1I.Ways; w++ {
			off, size := layout.WayRegion(c, true, w)
			dump.L1I = append(dump.L1I, b.SoC.ReadDRAM(int(off), size))
		}
		if tags {
			for w := 0; w < spec.L1D.Ways; w++ {
				dump.L1DTags = append(dump.L1DTags, readTags(coreBase, layout.L1DTagOffsets[w], layout.L1DSets))
			}
			for w := 0; w < spec.L1I.Ways; w++ {
				dump.L1ITags = append(dump.L1ITags, readTags(coreBase, layout.L1ITagOffsets[w], layout.L1ISets))
			}
		}
		res.Dumps = append(res.Dumps, dump)
	}
	tr.add("analyse extracted memory images")
	return res, nil
}

// VoltBootCaches executes the full Volt Boot attack against a board's L1
// caches and returns the extracted per-way images.
func VoltBootCaches(b *board.Board, cfg AttackConfig) (*CacheExtraction, error) {
	return voltBootCaches(b, cfg, false)
}

// VoltBootCachesWithTags is VoltBootCaches plus tag-RAM extraction: the
// result carries every line's raw tag entry, from which the attacker
// reconstructs the memory address each stolen line came from.
func VoltBootCachesWithTags(b *board.Board, cfg AttackConfig) (*CacheExtraction, error) {
	return voltBootCaches(b, cfg, true)
}

func voltBootCaches(b *board.Board, cfg AttackConfig, tags bool) (*CacheExtraction, error) {
	tr := &stepTracer{env: b.Env}
	psu, err := powerCycle(b, cfg, tr)
	if err != nil {
		return nil, err
	}
	if psu != nil {
		defer psu.Detach()
	}
	res, err := extractCaches(b, cfg, tr, tags)
	if err != nil {
		return nil, err
	}
	res.Trace = tr.steps
	return res, nil
}

// ColdBootCaches executes the §3 baseline: soak the board at tempC, power
// cycle with NO probe for offTime, and run the same extraction payload.
func ColdBootCaches(b *board.Board, tempC float64, offTime sim.Time, maxInstr uint64) (*CacheExtraction, error) {
	tr := &stepTracer{env: b.Env}
	chamber := board.NewChamber(b.Env)
	chamber.Soak(tempC)
	tr.add("static soak in thermal chamber at %.1f°C", tempC)
	cfg := AttackConfig{OffTime: offTime, MaxInstr: maxInstr}
	if _, err := powerCycle(b, cfg, tr); err != nil {
		return nil, err
	}
	res, err := extractCaches(b, cfg, tr, false)
	if err != nil {
		return nil, err
	}
	res.Trace = tr.steps
	return res, nil
}

// VoltBootRegisters executes the §7.2 attack: power cycle with the probe
// holding the core domain, then boot the register-dump payload (boot
// firmware clobbers X registers but never the vector registers).
func VoltBootRegisters(b *board.Board, cfg AttackConfig) (*RegisterExtraction, error) {
	tr := &stepTracer{env: b.Env}
	psu, err := powerCycle(b, cfg, tr)
	if err != nil {
		return nil, err
	}
	if psu != nil {
		defer psu.Detach()
	}
	img, err := RegisterDumpPayload()
	if err != nil {
		return nil, err
	}
	if err := b.SoC.Boot(img); err != nil {
		return nil, fmt.Errorf("core: booting register dump payload: %w", err)
	}
	tr.add("boot register-dump payload")
	if err := b.SoC.RunAllCores(cfg.MaxInstr); err != nil {
		return nil, err
	}
	tr.add("payload stored v0..v31 of every core to DRAM")

	spec := b.Spec()
	res := &RegisterExtraction{Device: spec.Board, Trace: tr.steps}
	for c := 0; c < spec.Cores; c++ {
		base := int(RegDumpBase + uint64(c)*RegDumpStride)
		regs := make([][]byte, 32)
		for v := 0; v < 32; v++ {
			regs[v] = b.SoC.ReadDRAM(base+v*16, 16)
		}
		res.PerCore = append(res.PerCore, regs)
	}
	return res, nil
}

// TLBExtraction is the result of a TLB-history attack: PerCore[c][e] is
// TLB entry e of core c (bit 0 = valid, bits [63:1] = page number).
type TLBExtraction struct {
	Device  string
	PerCore [][]uint64
	Trace   []Step
}

// VoltBootTLB executes the Ablation E attack: power cycle with the core
// domain held, then boot a payload that dumps every core's TLB via
// RAMINDEX — stealing the victim's page-access history out of
// microarchitectural state.
func VoltBootTLB(b *board.Board, cfg AttackConfig) (*TLBExtraction, error) {
	tr := &stepTracer{env: b.Env}
	psu, err := powerCycle(b, cfg, tr)
	if err != nil {
		return nil, err
	}
	if psu != nil {
		defer psu.Detach()
	}
	img, err := TLBDumpPayload()
	if err != nil {
		return nil, err
	}
	if err := b.SoC.Boot(img); err != nil {
		return nil, fmt.Errorf("core: booting TLB dump payload: %w", err)
	}
	tr.add("boot TLB-dump payload")
	if err := b.SoC.RunAllCores(cfg.MaxInstr); err != nil {
		return nil, err
	}
	tr.add("payload dumped per-core TLB entries via RAMINDEX")

	spec := b.Spec()
	res := &TLBExtraction{Device: spec.Board, Trace: tr.steps}
	for c := 0; c < spec.Cores; c++ {
		base := int(TLBDumpBase + uint64(c)*TLBDumpStride)
		raw := b.SoC.ReadDRAM(base, TLBEntries*8)
		entries := make([]uint64, TLBEntries)
		for e := range entries {
			for k := 0; k < 8; k++ {
				entries[e] |= uint64(raw[e*8+k]) << (8 * k)
			}
		}
		res.PerCore = append(res.PerCore, entries)
	}
	return res, nil
}

// VoltBootIRAM executes the §7.3 attack on internally booting parts: hold
// the memory domain, power cycle, let the internal ROM boot (clobbering
// its scratchpad ranges exactly as on silicon), and read the iRAM over
// JTAG.
func VoltBootIRAM(b *board.Board, cfg AttackConfig) (*IRAMExtraction, error) {
	spec := b.Spec()
	if !spec.HasJTAG || spec.IRAMBytes == 0 {
		return nil, fmt.Errorf("core: %s has no JTAG-accessible iRAM", spec.Board)
	}
	tr := &stepTracer{env: b.Env}
	psu, err := powerCycle(b, cfg, tr)
	if err != nil {
		return nil, err
	}
	if psu != nil {
		defer psu.Detach()
	}
	// Internal boot from mask ROM: no external media involved, but the
	// ROM's scratchpad usage happens before the JTAG window opens.
	if err := b.SoC.Boot(nil); err != nil {
		return nil, fmt.Errorf("core: internal boot: %w", err)
	}
	tr.add("device boots from internal ROM (scratchpad clobbers part of iRAM)")
	imgBytes, err := b.SoC.JTAGReadIRAM(0, spec.IRAMBytes)
	if err != nil {
		return nil, err
	}
	tr.add("dump %d KB iRAM over JTAG", spec.IRAMBytes/1024)
	return &IRAMExtraction{Device: spec.Board, Image: imgBytes, Trace: tr.steps}, nil
}

// WarmRebootResult is the outcome of a BootJacker-style forced restart.
type WarmRebootResult struct {
	Device string
	// DRAMImage is main memory as the malicious kernel sees it after the
	// warm reboot (no power cycle, so DRAM never decayed — unless a TCG
	// reset wipe ran).
	DRAMImage func(off, n int) []byte
	Trace     []Step
}

// WarmReboot executes the §9.1 baseline: force a reboot WITHOUT cutting
// power (watchdog/reset-pin style) and boot the attacker's image. DRAM
// contents carry over intact; the TCG reset mitigation (Options.TCGReset)
// is the documented defense. The extraction payload here is trivial — the
// attacker's kernel simply reads memory — so the result exposes a DRAM
// reader instead of running a dump program.
func WarmReboot(b *board.Board, img *soc.BootImage) (*WarmRebootResult, error) {
	tr := &stepTracer{env: b.Env}
	tr.add("force warm reboot (reset pin/watchdog) — power never interrupted")
	if err := b.SoC.Boot(img); err != nil {
		return nil, fmt.Errorf("core: warm reboot boot: %w", err)
	}
	tr.add("attacker kernel booted with DRAM contents carried over")
	return &WarmRebootResult{
		Device:    b.Spec().Board,
		DRAMImage: b.SoC.ReadDRAM,
		Trace:     tr.steps,
	}, nil
}

// RunVictim boots and runs a victim image on every core, leaving the
// machine in the "captured device" state the attack model starts from.
func RunVictim(b *board.Board, img *soc.BootImage, maxInstr uint64) error {
	if err := b.SoC.Boot(img); err != nil {
		return fmt.Errorf("core: booting victim: %w", err)
	}
	if err := b.SoC.RunAllCores(maxInstr); err != nil {
		return fmt.Errorf("core: running victim: %w", err)
	}
	return nil
}
