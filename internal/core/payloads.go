package core

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/soc"
)

// This file generates the post-reboot data-extraction payloads of §6.1
// step 3: bare-metal programs that (A) avoid touching the retained SRAM —
// they run with caches disabled out of uncached memory — and (B)
// exfiltrate the SRAM contents to DRAM through the RAMINDEX system
// register path, bracketing every RAMINDEX operation with the DSB/ISB
// barriers the Cortex-A72 requires.

// DumpBase is where extraction payloads deposit their output in DRAM.
const DumpBase uint64 = 0x200000

// CoreDumpStride separates per-core output regions.
const CoreDumpStride uint64 = 128 * 1024

// RegDumpBase is where the register-dump payload writes vector-register
// contents (32 regs × 16 bytes per core).
const RegDumpBase uint64 = 0x1F0000

// RegDumpStride separates per-core register dumps.
const RegDumpStride uint64 = 512

// DumpLayout records where each cache way of each core lands in DRAM so
// the harness can slice the exfiltrated image.
type DumpLayout struct {
	// L1DOffsets[way] / L1IOffsets[way] are offsets of way dumps within a
	// core's region; add DumpBase + core·CoreDumpStride.
	L1DOffsets []uint64
	L1IOffsets []uint64
	// L1DWayBytes / L1IWayBytes are the sizes of each way image.
	L1DWayBytes int
	L1IWayBytes int
	// L1DTagOffsets[way] / L1ITagOffsets[way] locate the tag-RAM dumps
	// (one 8-byte entry per set), present when the payload was built
	// with tags enabled.
	L1DTagOffsets []uint64
	L1ITagOffsets []uint64
	// L1DSets / L1ISets are the per-way set counts for slicing tags.
	L1DSets int
	L1ISets int
}

// WayRegion returns the absolute DRAM offset of a given way dump.
func (l DumpLayout) WayRegion(coreID int, icache bool, way int) (offset uint64, size int) {
	base := DumpBase + uint64(coreID)*CoreDumpStride
	if icache {
		return base + l.L1IOffsets[way], l.L1IWayBytes
	}
	return base + l.L1DOffsets[way], l.L1DWayBytes
}

// dumpLoop emits assembly that sweeps RAMINDEX over one cache way and
// stores every 64-bit word to the destination pointer in X3 (which it
// advances). Uses X10-X14 as scratch; label suffix keeps labels unique.
func dumpLoop(ramID uint64, way, words int, label string) string {
	return fmt.Sprintf(`
        LDIMM X10, #%#x         ; RAMINDEX request template: RAM id | way
        LDIMM X11, #%d          ; words in this way
        MOVZ X12, #0            ; word index
loop%s: ORR X13, X10, X12
        MSR RAMINDEX, X13       ; request cache-RAM read
        DSB                     ; §6.1: barriers must follow RAMINDEX
        ISB
        MRS X14, RAMDATA0
        STR X14, [X3]
        ADDI X3, X3, #8
        ADDI X12, X12, #1
        CMP X12, X11
        B.LT loop%s
    `, isa.RAMIndexRequest(ramID, way, 0), words, label, label)
}

// CacheDumpPayload builds the extraction payload for a device's L1
// caches: every core that runs it dumps its own L1D and L1I data RAMs,
// way by way, into its slice of the dump region.
func CacheDumpPayload(spec soc.DeviceSpec) (*soc.BootImage, DumpLayout, error) {
	return cacheDumpPayload(spec, false)
}

// CacheDumpPayloadWithTags additionally dumps the L1 tag RAMs, letting
// the attacker reconstruct the memory address of every stolen line
// (§5.2.4: invalidation flips state bits but tags, like data, persist).
func CacheDumpPayloadWithTags(spec soc.DeviceSpec) (*soc.BootImage, DumpLayout, error) {
	return cacheDumpPayload(spec, true)
}

func cacheDumpPayload(spec soc.DeviceSpec, tags bool) (*soc.BootImage, DumpLayout, error) {
	layout := DumpLayout{
		L1DWayBytes: spec.L1D.SizeBytes / spec.L1D.Ways,
		L1IWayBytes: spec.L1I.SizeBytes / spec.L1I.Ways,
		L1DSets:     spec.L1D.Sets(),
		L1ISets:     spec.L1I.Sets(),
	}
	src := fmt.Sprintf(`
        ; Locate this core's dump region: DumpBase + COREID·stride.
        MRS X0, COREID
        LDIMM X1, #%#x          ; stride
        MUL X2, X0, X1
        LDIMM X3, #%#x          ; DumpBase
        ADD X3, X3, X2
    `, CoreDumpStride, DumpBase)

	var off uint64
	for w := 0; w < spec.L1D.Ways; w++ {
		layout.L1DOffsets = append(layout.L1DOffsets, off)
		src += dumpLoop(isa.RAMIDL1DData, w, layout.L1DWayBytes/8, fmt.Sprintf("d%d", w))
		off += uint64(layout.L1DWayBytes)
	}
	for w := 0; w < spec.L1I.Ways; w++ {
		layout.L1IOffsets = append(layout.L1IOffsets, off)
		src += dumpLoop(isa.RAMIDL1IData, w, layout.L1IWayBytes/8, fmt.Sprintf("i%d", w))
		off += uint64(layout.L1IWayBytes)
	}
	if tags {
		for w := 0; w < spec.L1D.Ways; w++ {
			layout.L1DTagOffsets = append(layout.L1DTagOffsets, off)
			src += dumpLoop(isa.RAMIDL1DTag, w, layout.L1DSets, fmt.Sprintf("dt%d", w))
			off += uint64(layout.L1DSets * 8)
		}
		for w := 0; w < spec.L1I.Ways; w++ {
			layout.L1ITagOffsets = append(layout.L1ITagOffsets, off)
			src += dumpLoop(isa.RAMIDL1ITag, w, layout.L1ISets, fmt.Sprintf("it%d", w))
			off += uint64(layout.L1ISets * 8)
		}
	}
	src += "        HLT #0\n"
	if off > CoreDumpStride {
		return nil, layout, fmt.Errorf("core: dump region overflow: need %d bytes per core", off)
	}
	words, err := isa.Assemble(soc.PayloadBase, src)
	if err != nil {
		return nil, layout, fmt.Errorf("core: assembling cache dump payload: %w", err)
	}
	return &soc.BootImage{Words: words}, layout, nil
}

// RegisterDumpPayload builds the §7.2 payload: it stores every vector
// register (untouched by boot firmware) to DRAM. Each core writes 32×16
// bytes at RegDumpBase + COREID·RegDumpStride.
func RegisterDumpPayload() (*soc.BootImage, error) {
	src := fmt.Sprintf(`
        MRS X0, COREID
        LDIMM X1, #%#x
        MUL X2, X0, X1
        LDIMM X3, #%#x
        ADD X3, X3, X2
    `, RegDumpStride, RegDumpBase)
	for v := 0; v < 32; v++ {
		src += fmt.Sprintf(`
        UMOV X4, V%d, #0
        STR X4, [X3, #%d]
        UMOV X4, V%d, #1
        STR X4, [X3, #%d]
        `, v, v*16, v, v*16+8)
	}
	src += "        HLT #0\n"
	words, err := isa.Assemble(soc.PayloadBase, src)
	if err != nil {
		return nil, fmt.Errorf("core: assembling register dump payload: %w", err)
	}
	return &soc.BootImage{Words: words}, nil
}

// TLBDumpBase is where the TLB-dump payload deposits entries.
const TLBDumpBase uint64 = 0x1E0000

// TLBDumpStride separates per-core TLB dumps (64 entries × 8 bytes).
const TLBDumpStride uint64 = 1024

// TLBEntries is the modelled per-core TLB size.
const TLBEntries = 64

// TLBDumpPayload builds the Ablation E extraction payload: it sweeps
// RAMINDEX over the TLB's entries and stores them to DRAM, exposing the
// victim's retained page-translation history.
func TLBDumpPayload() (*soc.BootImage, error) {
	src := fmt.Sprintf(`
        MRS X0, COREID
        LDIMM X1, #%#x
        MUL X2, X0, X1
        LDIMM X3, #%#x
        ADD X3, X3, X2
    `, TLBDumpStride, TLBDumpBase)
	src += dumpLoop(isa.RAMIDTLB, 0, TLBEntries, "tlb")
	src += "        HLT #0\n"
	words, err := isa.Assemble(soc.PayloadBase, src)
	if err != nil {
		return nil, fmt.Errorf("core: assembling TLB dump payload: %w", err)
	}
	return &soc.BootImage{Words: words}, nil
}

// VictimNOPFillImage assembles the §7.1.1 victim: a program that enables
// the caches and executes a straight line of NOPs sized to fill the
// entire L1 i-cache, then halts. Running it leaves the i-cache packed
// with known machine code — the ground truth the attack is scored
// against.
func VictimNOPFillImage(spec soc.DeviceSpec) (*soc.BootImage, []uint32, error) {
	nops := spec.L1I.SizeBytes / 4
	words := make([]uint32, 0, nops+1)
	for i := 0; i < nops; i++ {
		words = append(words, isa.NOPWord)
	}
	halt := isa.Instr{Op: isa.OpHLT}.Encode()
	words = append(words, halt)
	return &soc.BootImage{Words: words, EnableCaches: true}, words, nil
}

// VictimPatternFillImage assembles a victim that fills count 8-byte words
// at base with a byte pattern through the (enabled) d-cache, then halts.
func VictimPatternFillImage(base uint64, count int, pattern byte) (*soc.BootImage, error) {
	rep := uint64(pattern)
	rep |= rep<<8 | rep<<16 | rep<<24 | rep<<32 | rep<<40 | rep<<48 | rep<<56
	src := fmt.Sprintf(`
        LDIMM X0, #%#x
        LDIMM X1, #%d
        LDIMM X2, #%#x
fill:   STR X2, [X0]
        ADDI X0, X0, #8
        SUBI X1, X1, #1
        CBNZ X1, fill
        HLT #0
    `, base, count, rep)
	words, err := isa.Assemble(soc.PayloadBase, src)
	if err != nil {
		return nil, err
	}
	return &soc.BootImage{Words: words, EnableCaches: true}, nil
}

// VictimVectorFillImage assembles the §7.2 victim: it loads
// distinguishable patterns into every vector register (even registers
// 0xAA…, odd registers 0xFF…, lane-tagged via INS) and halts, leaving the
// "key schedule" resident only in registers.
func VictimVectorFillImage() (*soc.BootImage, error) {
	src := ""
	for v := 0; v < 32; v++ {
		pattern := 0xAA
		if v%2 == 1 {
			pattern = 0xFF
		}
		src += fmt.Sprintf("        VMOVI V%d, #%#x\n", v, pattern)
	}
	src += "        HLT #0\n"
	words, err := isa.Assemble(soc.PayloadBase, src)
	if err != nil {
		return nil, err
	}
	return &soc.BootImage{Words: words}, nil
}

// VictimVectorKeyImage assembles a TRESOR-style victim: it materializes
// the given 16-byte round keys into vector registers V0..Vn (one round
// key per register, built with MOVK sequences and INS so the key bytes
// never touch DRAM), then halts.
func VictimVectorKeyImage(roundKeys [][]byte) (*soc.BootImage, error) {
	if len(roundKeys) > 32 {
		return nil, fmt.Errorf("core: %d round keys exceed 32 vector registers", len(roundKeys))
	}
	src := ""
	for v, rk := range roundKeys {
		if len(rk) != 16 {
			return nil, fmt.Errorf("core: round key %d is %d bytes, want 16", v, len(rk))
		}
		var lo, hi uint64
		for i := 0; i < 8; i++ {
			lo |= uint64(rk[i]) << (8 * i)
			hi |= uint64(rk[8+i]) << (8 * i)
		}
		src += fmt.Sprintf(`
        LDIMM X0, #%#x
        INS V%d, X0, #0
        LDIMM X0, #%#x
        INS V%d, X0, #1
        `, lo, v, hi, v)
	}
	src += "        MOVZ X0, #0\n        HLT #0\n" // scrub the staging register
	words, err := isa.Assemble(soc.PayloadBase, src)
	if err != nil {
		return nil, err
	}
	return &soc.BootImage{Words: words}, nil
}
