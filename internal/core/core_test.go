package core

import (
	"bytes"
	"testing"

	"repro/internal/aes"
	"repro/internal/analysis"
	"repro/internal/board"
	"repro/internal/cache"
	"repro/internal/sim"
	"repro/internal/soc"
)

func newBoard(t testing.TB, spec soc.DeviceSpec, opts soc.Options) *board.Board {
	t.Helper()
	env := sim.NewEnv()
	b, err := board.New(env, spec, opts, 0xBEEFCAFE)
	if err != nil {
		t.Fatal(err)
	}
	b.ConnectMain()
	return b
}

func TestVoltBootCachesNOPVictim(t *testing.T) {
	for _, spec := range []soc.DeviceSpec{soc.BCM2711(), soc.BCM2837()} {
		t.Run(spec.SoCName, func(t *testing.T) {
			b := newBoard(t, spec, soc.Options{})
			victim, groundTruth, err := VictimNOPFillImage(spec)
			if err != nil {
				t.Fatal(err)
			}
			if err := RunVictim(b, victim, 10_000_000); err != nil {
				t.Fatal(err)
			}
			// Physical ground truth: the i-cache contents the instant the
			// device is "captured".
			truth := make([][][]byte, spec.Cores)
			for c, core := range b.SoC.Cores {
				for w := 0; w < spec.L1I.Ways; w++ {
					truth[c] = append(truth[c], core.L1I.DumpWay(w))
				}
			}
			res, err := VoltBootCaches(b, DefaultAttackConfig())
			if err != nil {
				t.Fatal(err)
			}
			// §7.1.1: 100% data retention accuracy in all cores — the
			// extraction is bit-exact against the captured cache state.
			// For InlineECC i-caches (BCM2837, footnote 4) the raw dump
			// holds the ECC-interleaved image, so the word to count is
			// the encoded NOP, exactly as the paper scores that device
			// by before/after comparison rather than plain machine code.
			nopWord := groundTruth[0]
			if spec.L1I.InlineECC {
				nopWord = cache.ECCEncodeWord(nopWord)
			}
			nop := make([]byte, 4)
			for i := range nop {
				nop[i] = byte(nopWord >> (8 * i))
			}
			for c, dump := range res.Dumps {
				totalWords, nopWords := 0, 0
				for w, way := range dump.L1I {
					if hd := analysis.FractionalHD(truth[c][w], way); hd != 0 {
						t.Fatalf("core %d way %d: retention accuracy < 100%% (HD %v)", c, w, hd)
					}
					for i := 0; i+4 <= len(way); i += 4 {
						totalWords++
						if bytes.Equal(way[i:i+4], nop) {
							nopWords++
						}
					}
				}
				// Sanity: the extracted image really is the NOP victim
				// (a line or two differs where the HLT line landed).
				if frac := float64(nopWords) / float64(totalWords); frac < 0.99 {
					t.Fatalf("core %d: NOP fraction in extracted i-cache = %v", dump.Core, frac)
				}
			}
			if len(res.Trace) < 5 {
				t.Fatalf("attack trace too short: %v", res.Trace)
			}
		})
	}
}

func TestVoltBootExactRetentionVsPhysicalTruth(t *testing.T) {
	spec := soc.BCM2711()
	b := newBoard(t, spec, soc.Options{})
	victim, err := VictimPatternFillImage(0x100000, 2048, 0x5A)
	if err != nil {
		t.Fatal(err)
	}
	if err := RunVictim(b, victim, 10_000_000); err != nil {
		t.Fatal(err)
	}
	// Physical ground truth straight from the simulated silicon.
	truth := make([][][]byte, spec.Cores)
	for c, core := range b.SoC.Cores {
		for w := 0; w < spec.L1D.Ways; w++ {
			truth[c] = append(truth[c], core.L1D.DumpWay(w))
		}
	}
	res, err := VoltBootCaches(b, DefaultAttackConfig())
	if err != nil {
		t.Fatal(err)
	}
	for c, dump := range res.Dumps {
		for w, way := range dump.L1D {
			if hd := analysis.FractionalHD(truth[c][w], way); hd != 0 {
				t.Fatalf("core %d way %d: extraction error HD=%v, want exact", c, w, hd)
			}
		}
	}
}

func TestColdBootFailsOnSRAM(t *testing.T) {
	spec := soc.BCM2711()
	b := newBoard(t, spec, soc.Options{})
	victim, err := VictimPatternFillImage(0x100000, 2048, 0xA5)
	if err != nil {
		t.Fatal(err)
	}
	if err := RunVictim(b, victim, 10_000_000); err != nil {
		t.Fatal(err)
	}
	truth := b.SoC.Cores[0].L1D.DumpWay(0)
	res, err := ColdBootCaches(b, -40, 5*sim.Millisecond, 50_000_000)
	if err != nil {
		t.Fatal(err)
	}
	hd := analysis.FractionalHD(truth, res.Dumps[0].L1D[0])
	// Table 1: ~50% error at -40°C.
	if hd < 0.40 {
		t.Fatalf("cold boot at -40°C retained data (HD=%v); §3 says it must not", hd)
	}
}

func TestVoltBootRegistersRetainVectors(t *testing.T) {
	spec := soc.BCM2711()
	b := newBoard(t, spec, soc.Options{})
	victim, err := VictimVectorFillImage()
	if err != nil {
		t.Fatal(err)
	}
	if err := RunVictim(b, victim, 1_000_000); err != nil {
		t.Fatal(err)
	}
	res, err := VoltBootRegisters(b, DefaultAttackConfig())
	if err != nil {
		t.Fatal(err)
	}
	for c, regs := range res.PerCore {
		for v, reg := range regs {
			want := byte(0xAA)
			if v%2 == 1 {
				want = 0xFF
			}
			for i, got := range reg {
				if got != want {
					t.Fatalf("core %d V%d byte %d = %#x, want %#x", c, v, i, got, want)
				}
			}
		}
	}
}

func TestVoltBootStealsAESRoundKeys(t *testing.T) {
	spec := soc.BCM2711()
	b := newBoard(t, spec, soc.Options{})
	masterKey := []byte("on-chip AES key!")
	sched, err := aes.ExpandKey128(masterKey)
	if err != nil {
		t.Fatal(err)
	}
	// TRESOR-style victim: round keys 0..10 live in V0..V10 only.
	var rks [][]byte
	for r := 0; r <= 10; r++ {
		rks = append(rks, aes.RoundKey(sched, r))
	}
	victim, err := VictimVectorKeyImage(rks)
	if err != nil {
		t.Fatal(err)
	}
	if err := RunVictim(b, victim, 1_000_000); err != nil {
		t.Fatal(err)
	}
	res, err := VoltBootRegisters(b, DefaultAttackConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Recover the master key from the round key extracted out of V7.
	got, err := aes.InvertSchedule128(res.PerCore[0][7], 7)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, masterKey) {
		t.Fatalf("recovered key %x, want %x", got, masterKey)
	}
}

func TestVoltBootIRAM(t *testing.T) {
	spec := soc.IMX53()
	b := newBoard(t, spec, soc.Options{})
	// First boot (internal ROM), then stage the image over JTAG.
	if err := b.SoC.Boot(nil); err != nil {
		t.Fatal(err)
	}
	image := make([]byte, spec.IRAMBytes)
	for i := range image {
		image[i] = byte(i * 7)
	}
	if err := b.SoC.JTAGWriteIRAM(0, image); err != nil {
		t.Fatal(err)
	}
	res, err := VoltBootIRAM(b, DefaultAttackConfig())
	if err != nil {
		t.Fatal(err)
	}
	overall := analysis.FractionalHD(image, res.Image)
	// §7.3: overall error ≈2.7%, all of it from the boot ROM scratchpad.
	if overall > 0.05 || overall < 0.005 {
		t.Fatalf("iRAM extraction error = %v, want ≈0.027", overall)
	}
	// The untouched middle must be exact.
	if hd := analysis.FractionalHD(image[0x2000:0x1E000], res.Image[0x2000:0x1E000]); hd != 0 {
		t.Fatalf("untouched iRAM region corrupted: HD=%v", hd)
	}
}

func TestVoltBootIRAMOnNonJTAGDevice(t *testing.T) {
	b := newBoard(t, soc.BCM2711(), soc.Options{})
	if _, err := VoltBootIRAM(b, DefaultAttackConfig()); err == nil {
		t.Fatal("expected error on device without JTAG-accessible iRAM")
	}
}

func TestWeakProbeDegradesExtraction(t *testing.T) {
	spec := soc.BCM2711()
	b := newBoard(t, spec, soc.Options{})
	victim, err := VictimPatternFillImage(0x100000, 2048, 0x33)
	if err != nil {
		t.Fatal(err)
	}
	if err := RunVictim(b, victim, 10_000_000); err != nil {
		t.Fatal(err)
	}
	truth := b.SoC.Cores[0].L1D.DumpWay(0)
	cfg := DefaultAttackConfig()
	cfg.Probe.MaxAmps = 0.2 // far below the 2.5A surge
	res, err := VoltBootCaches(b, cfg)
	if err != nil {
		t.Fatal(err)
	}
	hd := analysis.FractionalHD(truth, res.Dumps[0].L1D[0])
	if hd == 0 {
		t.Fatal("a 0.2A probe should lose cells to the disconnect surge")
	}
}

func TestAuthenticatedBootBlocksExtraction(t *testing.T) {
	spec := soc.BCM2711()
	b := newBoard(t, spec, soc.Options{AuthenticatedBoot: true})
	if _, err := VoltBootCaches(b, DefaultAttackConfig()); err == nil {
		t.Fatal("authenticated boot must reject the unsigned extraction payload")
	}
}

func TestCacheDumpPayloadLayout(t *testing.T) {
	spec := soc.BCM2711()
	_, layout, err := CacheDumpPayload(spec)
	if err != nil {
		t.Fatal(err)
	}
	if layout.L1DWayBytes != 16*1024 || layout.L1IWayBytes != 16*1024 {
		t.Fatalf("way sizes = %d/%d", layout.L1DWayBytes, layout.L1IWayBytes)
	}
	if len(layout.L1DOffsets) != 2 || len(layout.L1IOffsets) != 3 {
		t.Fatalf("offsets = %v / %v", layout.L1DOffsets, layout.L1IOffsets)
	}
	// Regions must not overlap.
	off0, size0 := layout.WayRegion(0, false, 0)
	off1, _ := layout.WayRegion(0, false, 1)
	if off0+uint64(size0) > off1 {
		t.Fatal("way regions overlap")
	}
	// Core regions must not overlap either.
	lastOff, lastSize := layout.WayRegion(0, true, 2)
	nextCore, _ := layout.WayRegion(1, false, 0)
	if lastOff+uint64(lastSize) > nextCore {
		t.Fatal("core regions overlap")
	}
}

func TestVictimVectorKeyImageValidation(t *testing.T) {
	if _, err := VictimVectorKeyImage([][]byte{make([]byte, 8)}); err == nil {
		t.Fatal("short round key accepted")
	}
	long := make([][]byte, 33)
	for i := range long {
		long[i] = make([]byte, 16)
	}
	if _, err := VictimVectorKeyImage(long); err == nil {
		t.Fatal("33 round keys accepted")
	}
}

func TestAttackTraceMentionsPad(t *testing.T) {
	spec := soc.BCM2711()
	b := newBoard(t, spec, soc.Options{})
	res, err := VoltBootCaches(b, DefaultAttackConfig())
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, s := range res.Trace {
		if bytes.Contains([]byte(s.What), []byte("TP15")) {
			found = true
		}
	}
	if !found {
		t.Fatalf("trace does not mention the Table 3 pad: %v", res.Trace)
	}
}

// TestTagExtractionRecoversAddresses: the tag-dumping attack variant
// yields each stolen line's memory address, letting the attacker map the
// victim's layout, not just its bytes.
func TestTagExtractionRecoversAddresses(t *testing.T) {
	spec := soc.BCM2711()
	b := newBoard(t, spec, soc.Options{})
	// Victim touches three known lines through the d-cache.
	victim, err := VictimPatternFillImage(0x123400&^63, 8*3, 0x6B)
	if err != nil {
		t.Fatal(err)
	}
	if err := RunVictim(b, victim, 1_000_000); err != nil {
		t.Fatal(err)
	}
	ext, err := VoltBootCachesWithTags(b, DefaultAttackConfig())
	if err != nil {
		t.Fatal(err)
	}
	dump := ext.Dumps[0]
	if len(dump.L1DTags) != spec.L1D.Ways {
		t.Fatalf("tag dumps for %d ways", len(dump.L1DTags))
	}
	// Reconstruct addresses from the raw tag entries and look for the
	// victim's line.
	found := map[uint64]bool{}
	for w := range dump.L1DTags {
		for set, entry := range dump.L1DTags[w] {
			li := cache.ParseTagEntry(entry, set, spec.L1D)
			if li.Valid {
				found[li.Addr] = true
			}
		}
	}
	for _, addr := range []uint64{0x123400 &^ 63} {
		if !found[addr] {
			t.Fatalf("victim line address %#x not recovered from tag dump", addr)
		}
	}
}

// TestKeyScheduleFoundInCacheDump: the §6.1 step-4 workflow end to end —
// the victim's AES schedule sits somewhere in the d-cache; the attacker
// dumps the cache blind and locates the key with a schedule scan.
func TestKeyScheduleFoundInCacheDump(t *testing.T) {
	spec := soc.BCM2711()
	b := newBoard(t, spec, soc.Options{})
	if err := b.SoC.Boot(nil); err != nil {
		t.Fatal(err)
	}
	// Victim: schedule resident in the d-cache (CaSE/Copker style).
	key := []byte("cache-hidden key")
	sched, err := aes.ExpandKey128(key)
	if err != nil {
		t.Fatal(err)
	}
	cc := b.SoC.Cores[0]
	cc.L1D.InvalidateAll()
	cc.L1D.SetEnabled(true)
	for i := 0; i < len(sched); i += 8 {
		var v uint64
		for k := 0; k < 8; k++ {
			v |= uint64(sched[i+k]) << (8 * k)
		}
		if _, err := cc.L1D.Access(0x100000+uint64(i), 8, true, v, false); err != nil {
			t.Fatal(err)
		}
	}

	ext, err := VoltBootCaches(b, DefaultAttackConfig())
	if err != nil {
		t.Fatal(err)
	}
	// The attacker scans every extracted way without knowing the layout.
	var found *aes.FoundKey
	for _, dump := range ext.Dumps {
		for _, way := range dump.L1D {
			for _, h := range aes.FindKeySchedules(way, 0) {
				h := h
				found = &h
			}
		}
	}
	if found == nil {
		t.Fatal("schedule scan found nothing in the dump")
	}
	if !bytes.Equal(found.Key, key) {
		t.Fatalf("scan recovered %x, want %x", found.Key, key)
	}
}
