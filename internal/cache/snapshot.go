package cache

// Snapshot support for the cache's non-SRAM state. The tag and data RAMs
// are sram.Arrays and are captured by their own ArraySnapshots (the SoC
// enumerates them via Arrays()); what remains here is the plain-memory
// microarchitectural state a fork must also rewind so a restored trial
// replays bit-identically: LRU timestamps (they decide eviction order),
// the enable and way-lock configuration, and the hit/miss statistics.
//
// The way memo and contentGen are deliberately NOT captured: both are
// derived state. contentGen stays monotonic — RestoreAux bumps it, so
// predecode stamps issued after the capture can never falsely validate
// after the rewind — and the memo is simply dropped (its re-resolution
// is invisible to replacement order, stats, and contents).

// AuxSnapshot is the captured non-SRAM state of one Cache.
type AuxSnapshot struct {
	c          *Cache
	lastUse    [][]uint64
	useTick    uint64
	enabled    bool
	lockedWays []bool
	stats      Stats
}

// CaptureAux records the cache's plain-memory state.
func (c *Cache) CaptureAux() *AuxSnapshot {
	s := &AuxSnapshot{
		c:          c,
		lastUse:    make([][]uint64, len(c.lastUse)),
		useTick:    c.useTick,
		enabled:    c.enabled,
		lockedWays: append([]bool(nil), c.lockedWays...),
		stats:      c.stats,
	}
	for w := range c.lastUse {
		s.lastUse[w] = append([]uint64(nil), c.lastUse[w]...)
	}
	return s
}

// RestoreAux rewinds the cache's plain-memory state to the captured
// values, drops the way memo, and bumps the content generation.
func (c *Cache) RestoreAux(s *AuxSnapshot) {
	if s.c != c {
		panic("cache: RestoreAux onto a different cache")
	}
	for w := range c.lastUse {
		copy(c.lastUse[w], s.lastUse[w])
	}
	c.useTick = s.useTick
	c.enabled = s.enabled
	copy(c.lockedWays, s.lockedWays)
	c.stats = s.stats
	c.memoWay = -1
	c.contentGen++
}
