package cache

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/sim"
	"repro/internal/sram"
)

// flatBacking is a simple memory backing for cache tests.
type flatBacking struct {
	mem        map[uint64][]byte // line-addr -> line
	lineBytes  int
	readCount  int
	writeCount int
	failReads  bool
}

func newFlatBacking(lineBytes int) *flatBacking {
	return &flatBacking{mem: map[uint64][]byte{}, lineBytes: lineBytes}
}

func (f *flatBacking) ReadLine(addr uint64, buf []byte) error {
	if f.failReads {
		return fmt.Errorf("backing: injected read failure at %#x", addr)
	}
	f.readCount++
	if line, ok := f.mem[addr]; ok {
		copy(buf, line)
	} else {
		for i := range buf {
			buf[i] = 0
		}
	}
	return nil
}

func (f *flatBacking) WriteLine(addr uint64, buf []byte) error {
	f.writeCount++
	line := make([]byte, len(buf))
	copy(line, buf)
	f.mem[addr] = line
	return nil
}

func newTestCache(t testing.TB, cfg Config) (*Cache, *flatBacking, *sim.Env) {
	t.Helper()
	env := sim.NewEnv()
	back := newFlatBacking(cfg.LineBytes)
	c, err := New(env, cfg, sram.DefaultRetentionModel(), 42, back)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range c.Arrays() {
		a.SetRail(0.8)
	}
	// Power-up leaves random fingerprint bits in the tag RAM, so some
	// lines spuriously look valid — exactly like real hardware, which is
	// why boot code must invalidate caches before enabling them.
	c.InvalidateAll()
	c.SetEnabled(true)
	return c, back, env
}

// paperL1D matches the BCM2711 d-cache geometry the paper reports:
// 32KB, 2-way, 64B lines, 256 sets (Figure 3: WAY0 = 256×512b = 16KB).
func paperL1D() Config {
	return Config{Name: "L1D", SizeBytes: 32 * 1024, Ways: 2, LineBytes: 64}
}

func TestGeometry(t *testing.T) {
	cfg := paperL1D()
	if cfg.Sets() != 256 {
		t.Fatalf("sets = %d, want 256", cfg.Sets())
	}
	c, _, _ := newTestCache(t, cfg)
	if c.WayBytes() != 16*1024 {
		t.Fatalf("way bytes = %d, want 16KB", c.WayBytes())
	}
}

func TestConfigValidation(t *testing.T) {
	env := sim.NewEnv()
	bad := []Config{
		{Name: "zero", SizeBytes: 0, Ways: 1, LineBytes: 64},
		{Name: "line", SizeBytes: 1024, Ways: 1, LineBytes: 12},
		{Name: "div", SizeBytes: 1000, Ways: 2, LineBytes: 64},
		{Name: "pow2", SizeBytes: 3 * 64 * 2, Ways: 2, LineBytes: 64},
	}
	for _, cfg := range bad {
		if _, err := New(env, cfg, sram.DefaultRetentionModel(), 1, newFlatBacking(64)); err == nil {
			t.Errorf("config %q should be rejected", cfg.Name)
		}
	}
}

func TestReadAfterWriteThroughCache(t *testing.T) {
	c, _, _ := newTestCache(t, paperL1D())
	addrs := []uint64{0, 8, 64, 0x1000, 0xFFF8, 0x12340}
	for i, a := range addrs {
		v := uint64(0x1111111111111111) * uint64(i+1)
		if _, err := c.Access(a, 8, true, v, false); err != nil {
			t.Fatal(err)
		}
	}
	for i, a := range addrs {
		v, err := c.Access(a, 8, false, 0, false)
		if err != nil {
			t.Fatal(err)
		}
		if want := uint64(0x1111111111111111) * uint64(i+1); v != want {
			t.Fatalf("addr %#x: got %#x want %#x", a, v, want)
		}
	}
}

func TestSubWordAccesses(t *testing.T) {
	c, _, _ := newTestCache(t, paperL1D())
	if _, err := c.Access(0x100, 8, true, 0x8877665544332211, false); err != nil {
		t.Fatal(err)
	}
	b, _ := c.Access(0x100, 1, false, 0, false)
	if b != 0x11 {
		t.Fatalf("byte read = %#x", b)
	}
	w, _ := c.Access(0x104, 4, false, 0, false)
	if w != 0x88776655 {
		t.Fatalf("word read = %#x", w)
	}
	if _, err := c.Access(0x102, 2, true, 0xBEEF, false); err != nil {
		t.Fatal(err)
	}
	full, _ := c.Access(0x100, 8, false, 0, false)
	if full != 0x88776655BEEF2211 {
		t.Fatalf("after halfword store: %#x", full)
	}
}

func TestLineCrossingRejected(t *testing.T) {
	c, _, _ := newTestCache(t, paperL1D())
	if _, err := c.Access(60, 8, false, 0, false); err == nil {
		t.Fatal("line-crossing access should fail")
	}
}

func TestMissFillHitCounters(t *testing.T) {
	c, back, _ := newTestCache(t, paperL1D())
	if _, err := c.Access(0x200, 8, false, 0, false); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Access(0x208, 8, false, 0, false); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Misses != 1 || st.Hits != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if back.readCount != 1 {
		t.Fatalf("backing reads = %d, want 1", back.readCount)
	}
}

func TestEvictionWritesBackDirty(t *testing.T) {
	cfg := Config{Name: "tiny", SizeBytes: 2 * 2 * 64, Ways: 2, LineBytes: 64} // 2 sets
	c, back, _ := newTestCache(t, cfg)
	// Three distinct lines mapping to set 0: addresses 0, 128, 256 (2 sets × 64B).
	if _, err := c.Access(0, 8, true, 0xA1, false); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Access(128, 8, true, 0xB2, false); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Access(256, 8, true, 0xC3, false); err != nil {
		t.Fatal(err)
	}
	if c.Stats().Evictions == 0 {
		t.Fatal("expected an eviction")
	}
	if back.writeCount == 0 {
		t.Fatal("dirty victim must be written back")
	}
	// The evicted value must be recoverable through the cache.
	v, err := c.Access(0, 8, false, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0xA1 {
		t.Fatalf("reloaded evicted line = %#x, want 0xA1", v)
	}
}

func TestDisabledCacheBypasses(t *testing.T) {
	c, back, _ := newTestCache(t, paperL1D())
	c.SetEnabled(false)
	if _, err := c.Access(0x40, 8, true, 0xDD, false); err != nil {
		t.Fatal(err)
	}
	v, err := c.Access(0x40, 8, false, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0xDD {
		t.Fatalf("bypass read = %#x", v)
	}
	if c.Stats().Bypasses != 2 || c.Stats().Misses != 0 {
		t.Fatalf("stats = %+v", c.Stats())
	}
	if len(back.mem) == 0 {
		t.Fatal("bypass write must reach backing")
	}
	// The cache RAMs must be untouched: no line became valid.
	for w := 0; w < 2; w++ {
		for s := 0; s < c.Config().Sets(); s++ {
			if c.Line(w, s).Valid {
				t.Fatal("bypass must not allocate")
			}
		}
	}
}

// The paper's central §5.2.4 fact: clean/invalidate clears valid bits but
// leaves data RAM contents in place, readable via RAMINDEX.
func TestInvalidateLeavesDataRAM(t *testing.T) {
	c, _, _ := newTestCache(t, paperL1D())
	secret := uint64(0xDEADBEEFCAFEBABE)
	if _, err := c.Access(0x0, 8, true, secret, false); err != nil {
		t.Fatal(err)
	}
	if err := c.CleanInvalidateAll(); err != nil {
		t.Fatal(err)
	}
	// Architectural read misses (line invalid)...
	if c.Line(0, 0).Valid {
		t.Fatal("line still valid after clean/invalidate")
	}
	// ...but RAMINDEX still sees the secret.
	found := false
	for w := 0; w < 2; w++ {
		v, err := c.RAMIndexData(w, 0)
		if err != nil {
			t.Fatal(err)
		}
		if v == secret {
			found = true
		}
	}
	if !found {
		t.Fatal("secret not visible via RAMINDEX after invalidate")
	}
}

func TestZVAErasesDataRAM(t *testing.T) {
	c, _, _ := newTestCache(t, paperL1D())
	secret := uint64(0xDEADBEEFCAFEBABE)
	if _, err := c.Access(0x0, 8, true, secret, false); err != nil {
		t.Fatal(err)
	}
	if err := c.ZeroLineVA(0x0, false); err != nil {
		t.Fatal(err)
	}
	for w := 0; w < 2; w++ {
		v, _ := c.RAMIndexData(w, 0)
		if v == secret {
			t.Fatal("DC ZVA failed to erase the data RAM word")
		}
	}
}

func TestZVAWithCacheDisabledZeroesMemory(t *testing.T) {
	c, back, _ := newTestCache(t, paperL1D())
	c.SetEnabled(false)
	if _, err := c.Access(0x80, 8, true, 0x1234, false); err != nil {
		t.Fatal(err)
	}
	if err := c.ZeroLineVA(0x80, false); err != nil {
		t.Fatal(err)
	}
	v, _ := c.Access(0x80, 8, false, 0, false)
	if v != 0 {
		t.Fatalf("memory after uncached ZVA = %#x", v)
	}
	_ = back
}

func TestCleanInvalidateVA(t *testing.T) {
	c, back, _ := newTestCache(t, paperL1D())
	if _, err := c.Access(0x40, 8, true, 0x99, false); err != nil {
		t.Fatal(err)
	}
	if err := c.CleanInvalidateVA(0x40); err != nil {
		t.Fatal(err)
	}
	tag, set := 0, 1 // 0x40 is set 1 with 64B lines
	_ = tag
	if c.Line(0, set).Valid || c.Line(1, set).Valid {
		t.Fatal("line still valid after CIVAC")
	}
	if line, ok := back.mem[0x40]; !ok || line[0] != 0x99 {
		t.Fatal("CIVAC must write dirty data back")
	}
	// CIVAC of an uncached address is a no-op, not an error.
	if err := c.CleanInvalidateVA(0x9000); err != nil {
		t.Fatal(err)
	}
}

func TestWayLockingPreventsEviction(t *testing.T) {
	cfg := Config{Name: "lock", SizeBytes: 2 * 2 * 64, Ways: 2, LineBytes: 64}
	c, _, _ := newTestCache(t, cfg)
	// Install the CaSE-style secret in way 0 of set 0.
	if _, err := c.Access(0, 8, true, 0x5EC2E7, true); err != nil {
		t.Fatal(err)
	}
	c.LockWay(0, true)
	// Hammer set 0 with conflicting lines.
	for i := 1; i < 20; i++ {
		if _, err := c.Access(uint64(i*128), 8, false, 0, false); err != nil {
			t.Fatal(err)
		}
	}
	li := c.Line(0, 0)
	if !li.Valid || li.Addr != 0 {
		t.Fatal("locked way was evicted")
	}
	v, _ := c.RAMIndexData(0, 0)
	if v != 0x5EC2E7 {
		t.Fatalf("locked secret = %#x", v)
	}
}

func TestAllWaysLockedFails(t *testing.T) {
	cfg := Config{Name: "lockall", SizeBytes: 2 * 2 * 64, Ways: 2, LineBytes: 64}
	c, _, _ := newTestCache(t, cfg)
	c.LockWay(0, true)
	c.LockWay(1, true)
	if _, err := c.Access(0, 8, false, 0, false); err == nil {
		t.Fatal("fill with all ways locked should fail")
	}
}

func TestSecureBitTracking(t *testing.T) {
	c, _, _ := newTestCache(t, paperL1D())
	if _, err := c.Access(0x00, 8, true, 1, true); err != nil { // secure
		t.Fatal(err)
	}
	if _, err := c.Access(0x40, 8, true, 2, false); err != nil { // non-secure
		t.Fatal(err)
	}
	if li := c.Line(0, 0); li.NonSecure {
		t.Fatal("secure allocation marked NS")
	}
	if li := c.Line(0, 1); !li.NonSecure {
		t.Fatal("non-secure allocation not marked NS")
	}
	if !c.SecureLineAt(0, 0) {
		t.Fatal("SecureLineAt should flag the secure line")
	}
	if c.SecureLineAt(0, 64/8) {
		t.Fatal("SecureLineAt flagged a non-secure line")
	}
}

func TestRAMIndexBounds(t *testing.T) {
	c, _, _ := newTestCache(t, paperL1D())
	if _, err := c.RAMIndexData(2, 0); err == nil {
		t.Fatal("way out of range should fail")
	}
	if _, err := c.RAMIndexData(0, c.WayBytes()/8); err == nil {
		t.Fatal("word index out of range should fail")
	}
	if _, err := c.RAMIndexTag(0, 256); err == nil {
		t.Fatal("tag set out of range should fail")
	}
}

func TestDumpWayMatchesRAMIndexSweep(t *testing.T) {
	c, _, _ := newTestCache(t, paperL1D())
	for i := 0; i < 64; i++ {
		if _, err := c.Access(uint64(i*64), 8, true, uint64(i)|0xABCD0000, false); err != nil {
			t.Fatal(err)
		}
	}
	dump := c.DumpWay(0)
	for w := 0; w < len(dump)/8; w++ {
		v, err := c.RAMIndexData(0, w)
		if err != nil {
			t.Fatal(err)
		}
		var fromDump uint64
		for k := 0; k < 8; k++ {
			fromDump |= uint64(dump[w*8+k]) << (8 * k)
		}
		if v != fromDump {
			t.Fatalf("word %d: RAMINDEX %#x != dump %#x", w, v, fromDump)
		}
	}
}

func TestCacheAsBackingForInnerCache(t *testing.T) {
	env := sim.NewEnv()
	mem := newFlatBacking(64)
	l2, err := New(env, Config{Name: "L2", SizeBytes: 64 * 1024, Ways: 4, LineBytes: 64},
		sram.DefaultRetentionModel(), 7, mem)
	if err != nil {
		t.Fatal(err)
	}
	l1, err := New(env, paperL1D(), sram.DefaultRetentionModel(), 8, l2)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []*Cache{l1, l2} {
		for _, a := range c.Arrays() {
			a.SetRail(0.8)
		}
		c.SetEnabled(true)
	}
	if _, err := l1.Access(0x1234&^7, 8, true, 0xFEED, false); err != nil {
		t.Fatal(err)
	}
	// Flush L1 so the data lands in L2, then read through a fresh path.
	if err := l1.CleanInvalidateAll(); err != nil {
		t.Fatal(err)
	}
	v, err := l2.Access(0x1234&^7, 8, false, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0xFEED {
		t.Fatalf("L2 readback = %#x", v)
	}
}

func TestBackingErrorPropagates(t *testing.T) {
	c, back, _ := newTestCache(t, paperL1D())
	back.failReads = true
	if _, err := c.Access(0, 8, false, 0, false); err == nil {
		t.Fatal("backing failure must propagate")
	}
}

// Property: any (addr, value) round-trips through the enabled cache.
func TestAccessRoundTripProperty(t *testing.T) {
	c, _, _ := newTestCache(t, paperL1D())
	if err := quick.Check(func(addr uint32, v uint64) bool {
		a := uint64(addr) &^ 7
		if _, err := c.Access(a, 8, true, v, false); err != nil {
			return false
		}
		got, err := c.Access(a, 8, false, 0, false)
		return err == nil && got == v
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestVictimTieBreakOrder pins the replacement tie-break: among unlocked
// ways with equal LRU timestamps the lowest way wins, and locks are
// honoured before recency. Guards the simplified single-condition scan.
func TestVictimTieBreakOrder(t *testing.T) {
	cfg := Config{Name: "ways4", SizeBytes: 4 * 4 * 64, Ways: 4, LineBytes: 64} // 4 sets
	c, _, _ := newTestCache(t, cfg)
	// Make every way of set 0 valid so the invalid-way shortcut is out of
	// play: four distinct lines mapping to set 0.
	for k := 0; k < 4; k++ {
		if _, err := c.Access(uint64(k)*4*64, 8, false, 0, false); err != nil {
			t.Fatal(err)
		}
	}
	// All timestamps equal: lowest unlocked way must win.
	for w := 0; w < 4; w++ {
		c.lastUse[w][0] = 7
	}
	if w, err := c.victim(0); err != nil || w != 0 {
		t.Fatalf("victim on all-tie = (%d, %v), want way 0", w, err)
	}
	c.LockWay(0, true)
	if w, err := c.victim(0); err != nil || w != 1 {
		t.Fatalf("victim with way0 locked = (%d, %v), want way 1", w, err)
	}
	// Partial tie: ways 2 and 3 older than 1; lowest of the tied pair wins.
	c.lastUse[1][0] = 9
	c.lastUse[2][0] = 3
	c.lastUse[3][0] = 3
	if w, err := c.victim(0); err != nil || w != 2 {
		t.Fatalf("victim on partial tie = (%d, %v), want way 2", w, err)
	}
	// Strictly older way wins regardless of position.
	c.lastUse[3][0] = 1
	if w, err := c.victim(0); err != nil || w != 3 {
		t.Fatalf("victim on strict LRU = (%d, %v), want way 3", w, err)
	}
	// Everything locked is an error.
	for w := 0; w < 4; w++ {
		c.LockWay(w, true)
	}
	if _, err := c.victim(0); err == nil {
		t.Fatal("victim with all ways locked must fail")
	}
}

// TestAccessHitPathAllocFree pins the 0 allocs/op contract on steady-state
// hits — the property the execution fast path is built on.
func TestAccessHitPathAllocFree(t *testing.T) {
	for _, ecc := range []bool{false, true} {
		cfg := paperL1D()
		cfg.InlineECC = ecc
		c, _, _ := newTestCache(t, cfg)
		if _, err := c.Access(0, 8, true, 0x1122334455667788, false); err != nil {
			t.Fatal(err)
		}
		allocs := testing.AllocsPerRun(100, func() {
			if _, err := c.Access(0, 8, false, 0, false); err != nil {
				t.Fatal(err)
			}
			if _, err := c.Access(8, 4, true, 0xABCD, false); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Fatalf("InlineECC=%v: hit path allocates %.1f/op, want 0", ecc, allocs)
		}
	}
}

// TestLineTransferAllocFree pins 0 allocs/op on steady-state full-line
// transfers (the L1→L2 fill/writeback path).
func TestLineTransferAllocFree(t *testing.T) {
	c, _, _ := newTestCache(t, paperL1D())
	buf := make([]byte, 64)
	if err := c.WriteLine(0, buf); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := c.ReadLine(0, buf); err != nil {
			t.Fatal(err)
		}
		if err := c.WriteLine(0, buf); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("line transfer hit path allocates %.1f/op, want 0", allocs)
	}
}

func BenchmarkCacheAccessHit(b *testing.B) {
	c, _, _ := newTestCache(b, paperL1D())
	if _, err := c.Access(0, 8, true, 1, false); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Access(0, 8, false, 0, false); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCacheAccessMiss(b *testing.B) {
	c, _, _ := newTestCache(b, paperL1D())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Access(uint64(i)*64, 8, false, 0, false); err != nil {
			b.Fatal(err)
		}
	}
}

func TestECCEncodeDecodeRoundTrip(t *testing.T) {
	if err := quick.Check(func(w uint32) bool {
		return ECCDecodeWord(ECCEncodeWord(w)) == w
	}, nil); err != nil {
		t.Fatal(err)
	}
	// The scramble must actually change most words (zero is its own
	// encoding by construction).
	if ECCEncodeWord(0) != 0 {
		t.Fatal("zero word must encode to zero")
	}
	changed := 0
	for w := uint32(1); w < 4096; w++ {
		if ECCEncodeWord(w) != w {
			changed++
		}
	}
	if changed < 3000 {
		t.Fatalf("only %d/4095 words scrambled", changed)
	}
}

func TestInlineECCTransparentToSoftware(t *testing.T) {
	cfg := Config{Name: "ecc", SizeBytes: 4 * 1024, Ways: 2, LineBytes: 64, InlineECC: true}
	c, _, _ := newTestCache(t, cfg)
	// Read-after-write across sizes must behave exactly like a plain
	// cache from software's point of view.
	addrs := []uint64{0, 8, 0x104, 0x208}
	for i, a := range addrs {
		if _, err := c.Access(a, 8, true, 0x1111111111111111*uint64(i+1), false); err != nil {
			t.Fatal(err)
		}
	}
	for i, a := range addrs {
		v, err := c.Access(a, 8, false, 0, false)
		if err != nil {
			t.Fatal(err)
		}
		if v != 0x1111111111111111*uint64(i+1) {
			t.Fatalf("addr %#x: %#x", a, v)
		}
	}
	// Sub-word access inside a codeword.
	if _, err := c.Access(0x301, 1, true, 0xEE, false); err != nil {
		t.Fatal(err)
	}
	v, _ := c.Access(0x301, 1, false, 0, false)
	if v != 0xEE {
		t.Fatalf("byte readback = %#x", v)
	}
}

func TestInlineECCScramblesRawDump(t *testing.T) {
	cfg := Config{Name: "ecc", SizeBytes: 4 * 1024, Ways: 2, LineBytes: 64, InlineECC: true}
	c, _, _ := newTestCache(t, cfg)
	plain := uint64(0xA4000000A4000000) // two NOP-like words
	if _, err := c.Access(0, 8, true, plain, false); err != nil {
		t.Fatal(err)
	}
	// RAMINDEX sees the scrambled image, not the architectural value;
	// the allocated line lives in whichever way decoding recovers the
	// plain data from (the other way holds power-up noise).
	foundRaw, foundDecoded := false, false
	for w := 0; w < 2; w++ {
		raw, err := c.RAMIndexData(w, 0)
		if err != nil {
			t.Fatal(err)
		}
		if raw == plain {
			foundRaw = true
		}
		lo := ECCDecodeWord(uint32(raw))
		hi := ECCDecodeWord(uint32(raw >> 32))
		if uint64(lo)|uint64(hi)<<32 == plain {
			foundDecoded = true
		}
	}
	if foundRaw {
		t.Fatal("raw dump equals plain data despite InlineECC")
	}
	if !foundDecoded {
		t.Fatal("decoding the raw dump did not recover the plain data in either way")
	}
}

func TestInlineECCWritebackDecodes(t *testing.T) {
	cfg := Config{Name: "ecc", SizeBytes: 2 * 2 * 64, Ways: 2, LineBytes: 64, InlineECC: true}
	c, back, _ := newTestCache(t, cfg)
	if _, err := c.Access(0, 8, true, 0xFEEDFACE, false); err != nil {
		t.Fatal(err)
	}
	if err := c.CleanInvalidateAll(); err != nil {
		t.Fatal(err)
	}
	// The backing store must receive PLAIN data, not the scrambled image.
	line := back.mem[0]
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(line[i]) << (8 * i)
	}
	if v != 0xFEEDFACE {
		t.Fatalf("writeback = %#x, want plain 0xFEEDFACE", v)
	}
}
