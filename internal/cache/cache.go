// Package cache models set-associative caches whose tag and data storage
// are real sram.Array instances, so cache contents obey the same
// power/retention physics as every other on-chip memory.
//
// The model preserves the architectural properties the Volt Boot paper
// leans on (§5.2.4, §6.1, §7.1):
//
//   - Clean/invalidate operations touch only the state bits in the tag
//     RAM; the data RAM is never erased. The only architectural way to
//     overwrite L1 data RAM is DC ZVA (or ordinary stores).
//   - The RAMINDEX debug interface reads tag and data RAMs directly,
//     bypassing hit/miss logic and valid bits — retained garbage, secrets
//     and all.
//   - Caches are software-enabled: until enabled, accesses bypass to the
//     next level and the RAM contents stay whatever power-up or retention
//     left there.
//   - Lines carry a TrustZone NS bit; secure lines can be barred from
//     non-secure RAMINDEX reads (one of the §8 countermeasures).
//   - Ways can be locked (CaSE-style cache-as-RAM), excluding them from
//     eviction.
package cache

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/sram"
)

// Backing is the next level in the memory hierarchy (an outer cache or
// the memory system), accessed at line granularity.
type Backing interface {
	// ReadLine fills buf with the line at the aligned address addr.
	ReadLine(addr uint64, buf []byte) error
	// WriteLine writes buf back to the aligned address addr.
	WriteLine(addr uint64, buf []byte) error
}

// Config fixes a cache's geometry.
type Config struct {
	// Name identifies the cache in logs and RAMINDEX maps, e.g.
	// "core0.L1D".
	Name string
	// SizeBytes is the total data capacity.
	SizeBytes int
	// Ways is the associativity.
	Ways int
	// LineBytes is the line size.
	LineBytes int
	// InlineECC marks data RAMs that store each 32-bit word interleaved
	// with its ECC bits in an undocumented order (the Cortex-A53 i-cache,
	// paper footnote 4). Architectural reads are transparent — hardware
	// decodes — but the raw RAMINDEX view differs from the plain machine
	// code, so extractions can only be scored by before/after comparison.
	// Modelled as a deterministic per-word scramble (ECCEncodeWord).
	InlineECC bool
}

// ECCEncodeWord returns the raw data-RAM image of a 32-bit word in an
// InlineECC cache: the word XOR-folded with a parity-derived mask,
// standing in for the undocumented data+ECC interleaving. It is an
// involution-free bijection per word; ECCDecodeWord inverts it.
//voltvet:hotpath
func ECCEncodeWord(w uint32) uint32 {
	return w ^ eccMask(w)
}

// ECCDecodeWord inverts ECCEncodeWord. The parity nibble appears an even
// number of times in the mask, so the XOR-fold of a stored word equals
// the fold of the original — the mask can be re-derived from the stored
// image directly.
//voltvet:hotpath
func ECCDecodeWord(stored uint32) uint32 {
	return stored ^ eccMask(stored)
}

// eccMask derives the per-word scramble from parity folds of the word.
//voltvet:hotpath
func eccMask(w uint32) uint32 {
	p := w ^ w>>16
	p ^= p >> 8
	p ^= p >> 4
	p &= 0xF
	// Replicate the 4-bit parity nibble across the word the way packed
	// ECC fields would sit between data bits.
	return p * 0x10101010
}

// Sets returns the number of sets implied by the geometry.
//voltvet:hotpath
func (c Config) Sets() int { return c.SizeBytes / c.Ways / c.LineBytes }

func (c Config) validate() error {
	if c.SizeBytes <= 0 || c.Ways <= 0 || c.LineBytes <= 0 {
		return fmt.Errorf("cache %s: non-positive geometry", c.Name)
	}
	if c.LineBytes%8 != 0 {
		return fmt.Errorf("cache %s: line size must be a multiple of 8", c.Name)
	}
	if c.SizeBytes%(c.Ways*c.LineBytes) != 0 {
		return fmt.Errorf("cache %s: size not divisible by ways×line", c.Name)
	}
	s := c.Sets()
	if s&(s-1) != 0 {
		return fmt.Errorf("cache %s: set count %d not a power of two", c.Name, s)
	}
	return nil
}

// Tag-RAM entry layout (one 64-bit word per way×set):
//
//	bits [51:0]  tag
//	bit  61      NS (non-secure allocation)
//	bit  62      dirty
//	bit  63      valid
//
// Lock bits are microarchitectural configuration, not SRAM content, and
// live in plain fields.
const (
	tagValidBit = 1 << 63
	tagDirtyBit = 1 << 62
	tagNSBit    = 1 << 61
	tagMask     = 1<<52 - 1
)

// Stats counts cache events since the last ResetStats.
type Stats struct {
	Hits       uint64
	Misses     uint64
	Evictions  uint64
	Writebacks uint64
	Bypasses   uint64
}

// Cache is one set-associative cache level backed by SRAM arrays.
type Cache struct {
	cfg     Config
	sets    int
	backing Backing

	// dataRAM[w] holds sets×LineBytes bytes for way w; the per-way split
	// mirrors how the paper dumps and reports "WAY0"/"WAY1" images.
	//voltvet:nosnap sram.Arrays with their own snapshot pairs, enumerated by the SoC capture (allArrays)
	dataRAM []*sram.Array
	// tagRAM holds one 64-bit entry per (way, set): way-major layout.
	//voltvet:nosnap an sram.Array with its own snapshot pair, enumerated by the SoC capture (allArrays)
	tagRAM *sram.Array

	// enabled gates allocation: a disabled cache bypasses to backing
	// without touching the RAMs.
	enabled bool
	// lockedWays[w] excludes way w from replacement (CaSE cache-as-RAM).
	lockedWays []bool
	// lastUse[w][set] is an LRU timestamp. Replacement is true LRU —
	// close enough to the pseudo-LRU of the modelled cores, and the
	// property behind Table 4's shape: background noise evicts its own
	// stale lines until the benchmark's working set fills the cache.
	// This is microarchitectural metadata; its loss across power cycles
	// is irrelevant to the attack, so it lives in plain memory.
	lastUse [][]uint64
	useTick uint64

	// scratch is a reusable LineBytes buffer for fills, writebacks and
	// bypasses, so the hot path never calls make. Like lastUse it is
	// derived state: it holds no architectural content between calls and
	// deliberately lives outside the SRAM retention physics. Reentrancy
	// is safe because each cache level owns its own scratch and every
	// use is complete before the next backing call that could recurse
	// into this cache.
	//voltvet:nosnap reusable fill/writeback buffer; holds no architectural content between calls
	scratch []byte

	// contentGen counts every event that can change what a fetch through
	// this cache observes: fills, evictions, writes, maintenance ops, and
	// enable toggles. The SoC's predecoded i-stream keys its entries on
	// this counter (plus its own mutation counter), so any such event
	// invalidates all predecoded instructions served through this cache.
	// LRU touches do not bump it — they change replacement order, not
	// content — which is what lets straight-line loops keep their
	// predecode entries hot. Monotonic, derived state, never stored in
	// SRAM.
	contentGen uint64

	// Single-entry way memo: the (tag, set) → way resolution of the most
	// recent hit, stamped with the tag RAM's content generation. While the
	// stamp matches, no tag entry has been written and no physics event has
	// touched the tag array, so the memoised way still holds a valid line
	// with the memoised tag and the Ways-wide tag scan in lookup can be
	// skipped. Any tag write — fill, eviction, maintenance, a first
	// dirty-bit set — or any power/retention event on the tag RAM bumps
	// its generation and retires the memo. Derived state: it resolves to
	// exactly what lookup would return, so it is invisible to replacement
	// order, stats and contents.
	//voltvet:nosnap generation-stamped way memo; the restore's gen bump retires it without touching it
	memoTag uint64
	//voltvet:nosnap generation-stamped way memo; the restore's gen bump retires it without touching it
	memoGen uint64
	//voltvet:nosnap generation-stamped way memo; the restore's gen bump retires it without touching it
	memoSet int32
	//voltvet:nosnap reset to empty (-1) by RestoreAux; the way memo never survives a rewind
	memoWay int32 // -1 when empty

	stats Stats
}

// New builds a cache and its SRAM arrays. The arrays are registered as
// loads on a power domain by the caller (typically soc.Device wiring).
func New(env *sim.Env, cfg Config, model sram.RetentionModel, seed uint64, backing Backing) (*Cache, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	sets := cfg.Sets()
	c := &Cache{
		cfg:        cfg,
		sets:       sets,
		backing:    backing,
		dataRAM:    make([]*sram.Array, cfg.Ways),
		lockedWays: make([]bool, cfg.Ways),
		lastUse:    make([][]uint64, cfg.Ways),
		scratch:    make([]byte, cfg.LineBytes),
		memoWay:    -1,
	}
	for w := range c.lastUse {
		c.lastUse[w] = make([]uint64, sets)
	}
	for w := range c.dataRAM {
		c.dataRAM[w] = sram.NewArray(env, fmt.Sprintf("%s.data.w%d", cfg.Name, w),
			sets*cfg.LineBytes*8, model, seed)
	}
	c.tagRAM = sram.NewArray(env, cfg.Name+".tag", cfg.Ways*sets*64, model, seed)
	return c, nil
}

// Config returns the cache geometry.
func (c *Cache) Config() Config { return c.cfg }

// Arrays returns every SRAM array the cache owns (for power-domain
// attachment): data ways first, then the tag RAM.
func (c *Cache) Arrays() []*sram.Array {
	out := make([]*sram.Array, 0, len(c.dataRAM)+1)
	out = append(out, c.dataRAM...)
	return append(out, c.tagRAM)
}

// Enabled reports whether the cache allocates.
//voltvet:hotpath
func (c *Cache) Enabled() bool { return c.enabled }

// SetEnabled turns allocation on or off. Disabling does not flush: that
// is the software's job (and the attacker's opportunity). Toggling
// changes fetch routing, so it invalidates predecoded instructions.
func (c *Cache) SetEnabled(on bool) {
	c.enabled = on
	c.contentGen++
}

// ContentGen returns the monotonic content-generation counter. See the
// field comment; consumers treat any change as "refetch everything".
//voltvet:hotpath
func (c *Cache) ContentGen() uint64 { return c.contentGen }

// LockWay marks a way as non-evictable.
func (c *Cache) LockWay(w int, locked bool) { c.lockedWays[w] = locked }

// WayLocked reports whether way w is locked.
func (c *Cache) WayLocked(w int) bool { return c.lockedWays[w] }

// Stats returns the event counters.
func (c *Cache) Stats() Stats { return c.stats }

// ResetStats zeroes the event counters.
func (c *Cache) ResetStats() { c.stats = Stats{} }

//voltvet:hotpath
func (c *Cache) index(addr uint64) (tag uint64, set int, off int) {
	off = int(addr) & (c.cfg.LineBytes - 1)
	set = int(addr/uint64(c.cfg.LineBytes)) & (c.sets - 1)
	tag = addr / uint64(c.cfg.LineBytes) / uint64(c.sets)
	return tag & tagMask, set, off
}

//voltvet:hotpath
func (c *Cache) tagEntry(way, set int) uint64 {
	return c.tagRAM.ReadUint64((way*c.sets + set) * 8)
}

//voltvet:hotpath
func (c *Cache) setTagEntry(way, set int, v uint64) {
	c.tagRAM.WriteUint64((way*c.sets+set)*8, v)
}

// lookup returns the hitting way for addr, or -1.
//
//voltvet:hotpath
func (c *Cache) lookup(tag uint64, set int) int {
	for w := 0; w < c.cfg.Ways; w++ {
		e := c.tagEntry(w, set)
		if e&tagValidBit != 0 && e&tagMask == tag {
			return w
		}
	}
	return -1
}

// victim picks the way to replace in set, honouring locks. Invalid ways
// win first; otherwise the least recently used unlocked way.
//voltvet:hotpath
func (c *Cache) victim(set int) (int, error) {
	for w := 0; w < c.cfg.Ways; w++ {
		if c.lockedWays[w] {
			continue
		}
		if c.tagEntry(w, set)&tagValidBit == 0 {
			return w, nil
		}
	}
	best, bestUse := -1, uint64(0)
	for w := 0; w < c.cfg.Ways; w++ {
		if c.lockedWays[w] {
			continue
		}
		// Strict < keeps the lowest unlocked way on equal timestamps —
		// the tie-break order the replacement tests pin. (Ties only occur
		// for never-touched ways; touch assigns unique ticks.)
		if u := c.lastUse[w][set]; best < 0 || u < bestUse {
			best, bestUse = w, u
		}
	}
	if best < 0 {
		return 0, fmt.Errorf("cache %s: all ways locked in set %d", c.cfg.Name, set)
	}
	return best, nil
}

// touch records a use of (way, set) for LRU.
//
//voltvet:hotpath
func (c *Cache) touch(way, set int) {
	c.useTick++
	c.lastUse[way][set] = c.useTick
}

// TouchFetchHit replays the microarchitectural side effects of a hit at
// (way, set) — the hit counter and the LRU touch — without re-reading
// the RAMs. The SoC's predecoded i-stream calls it on a predecode hit so
// replacement order and event counters stay bit-identical to the full
// fetch path it short-circuits.
//
//voltvet:hotpath
func (c *Cache) TouchFetchHit(way, set int) {
	c.stats.Hits++
	c.touch(way, set)
}

// ResidentWaySet probes, without side effects, whether addr is resident
// and in which (way, set). The predecoded i-stream keys its entries on
// the answer.
//voltvet:hotpath
func (c *Cache) ResidentWaySet(addr uint64) (way, set int, ok bool) {
	tag, s, _ := c.index(addr)
	w := c.lookup(tag, s)
	return w, s, w >= 0
}

//voltvet:hotpath
func (c *Cache) lineAddr(tag uint64, set int) uint64 {
	return (tag*uint64(c.sets) + uint64(set)) * uint64(c.cfg.LineBytes)
}

// fill brings the line containing addr into (tag,set) and returns the
// way. Dirty victims are written back first.
//voltvet:hotpath
func (c *Cache) fill(tag uint64, set int, secure bool) (int, error) {
	w, err := c.victim(set)
	if err != nil {
		return 0, err
	}
	if e := c.tagEntry(w, set); e&tagValidBit != 0 && e&tagDirtyBit != 0 {
		victimAddr := c.lineAddr(e&tagMask, set)
		c.dataRAM[w].ReadBytesInto(set*c.cfg.LineBytes, c.scratch)
		if c.cfg.InlineECC {
			eccDecodeLine(c.scratch)
		}
		if err := c.backing.WriteLine(victimAddr, c.scratch); err != nil { //voltvet:ignore VV-HOT006 deliberate backing seam: the next level is an L2 cache or DRAM, decided at wiring time; the dynamic zero-alloc gate covers both
			return 0, fmt.Errorf("cache %s: writeback of %#x: %w", c.cfg.Name, victimAddr, err)
		}
		c.stats.Writebacks++
	}
	if c.tagEntry(w, set)&tagValidBit != 0 {
		c.stats.Evictions++
	}
	if err := c.backing.ReadLine(c.lineAddr(tag, set), c.scratch); err != nil { //voltvet:ignore VV-HOT006 deliberate backing seam: the next level is an L2 cache or DRAM, decided at wiring time; the dynamic zero-alloc gate covers both
		return 0, fmt.Errorf("cache %s: fill of %#x: %w", c.cfg.Name, c.lineAddr(tag, set), err)
	}
	if c.cfg.InlineECC {
		eccEncodeLine(c.scratch)
	}
	c.dataRAM[w].WriteBytes(set*c.cfg.LineBytes, c.scratch)
	entry := tag | tagValidBit
	if !secure {
		entry |= tagNSBit
	}
	c.setTagEntry(w, set, entry)
	c.contentGen++
	return w, nil
}

// Access performs a read or write of size bytes (1–8, not crossing a
// line) at addr. secure is the TrustZone state of the requestor, recorded
// in the NS bit on allocation. Returns the loaded value for reads.
//
//voltvet:hotpath
func (c *Cache) Access(addr uint64, size int, write bool, wdata uint64, secure bool) (uint64, error) {
	tag, set, off := c.index(addr)
	if off+size > c.cfg.LineBytes {
		return 0, fmt.Errorf("cache %s: access at %#x size %d crosses a line", c.cfg.Name, addr, size)
	}
	if !c.enabled {
		c.stats.Bypasses++
		return c.bypass(addr, size, write, wdata)
	}
	var w int
	if c.memoWay >= 0 && tag == c.memoTag && set == int(c.memoSet) && c.tagRAM.Gen() == c.memoGen {
		// Memo hit: the tag RAM is untouched since the stamp, so the
		// memoised way still holds this line.
		w = int(c.memoWay)
		c.stats.Hits++
	} else if w = c.lookup(tag, set); w < 0 {
		c.stats.Misses++
		var err error
		w, err = c.fill(tag, set, secure)
		if err != nil {
			return 0, err
		}
		c.memoStore(tag, set, w)
	} else {
		c.stats.Hits++
		c.memoStore(tag, set, w)
	}
	c.touch(w, set)
	base := set*c.cfg.LineBytes + off
	if c.cfg.InlineECC {
		return c.accessECC(w, set, base, size, write, wdata)
	}
	if write {
		c.dataRAM[w].WriteUintN(base, size, wdata)
		c.markDirty(w, set)
		c.contentGen++
		return 0, nil
	}
	return c.dataRAM[w].ReadUintN(base, size), nil
}

// memoStore records a freshly resolved (tag, set) → way mapping, stamped
// against the tag RAM's current generation.
//
//voltvet:hotpath
func (c *Cache) memoStore(tag uint64, set, way int) {
	c.memoTag = tag
	c.memoSet = int32(set)
	c.memoWay = int32(way)
	c.memoGen = c.tagRAM.Gen()
}

// markDirty sets the dirty bit on (way, set). Lines that are already
// dirty skip the redundant tag write: the stored entry would be
// bit-identical, and skipping it keeps the tag RAM's generation — and
// with it the way memo — stable across store streams to a dirty line.
//
//voltvet:hotpath
func (c *Cache) markDirty(way, set int) {
	e := c.tagEntry(way, set)
	if e&tagDirtyBit != 0 {
		return
	}
	c.setTagEntry(way, set, e|tagDirtyBit)
	// Our own tag write moved the generation but not the way mapping;
	// keep the memo alive if it points at this cache state.
	if c.memoWay >= 0 {
		c.memoGen = c.tagRAM.Gen()
	}
}

// accessECC performs an architectural access to an InlineECC data RAM:
// the hardware decodes stored words on read and re-encodes on write, so
// software sees plain data while the RAM holds the scrambled image.
// Accesses operate on the 4-byte codeword(s) covering the request.
//
//voltvet:hotpath
func (c *Cache) accessECC(w, set, base, size int, write bool, wdata uint64) (uint64, error) {
	wordBase := base &^ 3
	span := (base+size+3)&^3 - wordBase // 4, 8 or 12 bytes: ≤3 codewords
	off := base - wordBase              // request start within the span
	arr := c.dataRAM[w]
	if write {
		for i := 0; i < span; i += 4 {
			dec := ECCDecodeWord(uint32(arr.ReadUintN(wordBase+i, 4)))
			// Overlay the request bytes covering this codeword.
			for k := 0; k < 4; k++ {
				if j := i + k - off; j >= 0 && j < size {
					shift := uint(8 * k)
					dec = dec&^(0xFF<<shift) | uint32(byte(wdata>>(8*uint(j))))<<shift
				}
			}
			arr.WriteUintN(wordBase+i, 4, uint64(ECCEncodeWord(dec)))
		}
		c.markDirty(w, set)
		c.contentGen++
		return 0, nil
	}
	var v uint64
	for i := 0; i < span; i += 4 {
		dec := ECCDecodeWord(uint32(arr.ReadUintN(wordBase+i, 4)))
		for k := 0; k < 4; k++ {
			if j := i + k - off; j >= 0 && j < size {
				v |= uint64(byte(dec>>(8*uint(k)))) << (8 * uint(j))
			}
		}
	}
	return v, nil
}

// eccEncodeLine scrambles a line buffer in place for InlineECC storage.
//voltvet:hotpath
func eccEncodeLine(buf []byte) {
	for i := 0; i+4 <= len(buf); i += 4 {
		word := uint32(buf[i]) | uint32(buf[i+1])<<8 | uint32(buf[i+2])<<16 | uint32(buf[i+3])<<24
		enc := ECCEncodeWord(word)
		buf[i], buf[i+1], buf[i+2], buf[i+3] = byte(enc), byte(enc>>8), byte(enc>>16), byte(enc>>24)
	}
}

// eccDecodeLine unscrambles a line buffer in place (writebacks).
//voltvet:hotpath
func eccDecodeLine(buf []byte) {
	for i := 0; i+4 <= len(buf); i += 4 {
		word := uint32(buf[i]) | uint32(buf[i+1])<<8 | uint32(buf[i+2])<<16 | uint32(buf[i+3])<<24
		dec := ECCDecodeWord(word)
		buf[i], buf[i+1], buf[i+2], buf[i+3] = byte(dec), byte(dec>>8), byte(dec>>16), byte(dec>>24)
	}
}

// bypass routes an access around the disabled cache: read-modify-write of
// the backing line through the reusable scratch buffer.
//
//voltvet:hotpath
func (c *Cache) bypass(addr uint64, size int, write bool, wdata uint64) (uint64, error) {
	lineAddr := addr &^ uint64(c.cfg.LineBytes-1)
	off := int(addr - lineAddr)
	buf := c.scratch
	if err := c.backing.ReadLine(lineAddr, buf); err != nil { //voltvet:ignore VV-HOT006 deliberate backing seam: the next level is an L2 cache or DRAM, decided at wiring time; the dynamic zero-alloc gate covers both
		return 0, err
	}
	if write {
		for i := 0; i < size; i++ {
			buf[off+i] = byte(wdata >> (8 * i))
		}
		return 0, c.backing.WriteLine(lineAddr, buf) //voltvet:ignore VV-HOT006 deliberate backing seam: the next level is an L2 cache or DRAM, decided at wiring time; the dynamic zero-alloc gate covers both
	}
	var v uint64
	for i := 0; i < size; i++ {
		v |= uint64(buf[off+i]) << (8 * i)
	}
	return v, nil
}

// ReadLine implements Backing, letting this cache serve as the next level
// for an inner cache (L1 → L2). When the inner line matches this cache's
// own geometry — the common case; every modelled device uses 64-byte
// lines at every level — the transfer happens at line granularity: one
// lookup, one fill or hit, one LRU touch, one bulk data-RAM copy, instead
// of eight recursive 8-byte Accesses. The architectural outcome is
// identical: the same line is resident afterwards with the same content,
// and collapsing eight consecutive LRU touches of one (way, set) into one
// preserves the relative recency order that victim selection depends on.
//voltvet:hotpath
func (c *Cache) ReadLine(addr uint64, buf []byte) error {
	if len(buf) == c.cfg.LineBytes && addr&uint64(c.cfg.LineBytes-1) == 0 {
		return c.readLineFast(addr, buf)
	}
	// Inner line size or alignment differs; fall back to the word loop.
	for i := 0; i < len(buf); i += 8 {
		v, err := c.Access(addr+uint64(i), 8, false, 0, false)
		if err != nil {
			return err
		}
		for k := 0; k < 8 && i+k < len(buf); k++ {
			buf[i+k] = byte(v >> (8 * k))
		}
	}
	return nil
}

//voltvet:hotpath
func (c *Cache) readLineFast(addr uint64, buf []byte) error {
	if !c.enabled {
		c.stats.Bypasses++
		return c.backing.ReadLine(addr, buf) //voltvet:ignore VV-HOT006 deliberate backing seam: the next level is an L2 cache or DRAM, decided at wiring time; the dynamic zero-alloc gate covers both
	}
	tag, set, _ := c.index(addr)
	w := c.lookup(tag, set)
	if w < 0 {
		c.stats.Misses++
		var err error
		if w, err = c.fill(tag, set, false); err != nil {
			return err
		}
	} else {
		c.stats.Hits++
	}
	c.touch(w, set)
	c.dataRAM[w].ReadBytesInto(set*c.cfg.LineBytes, buf)
	if c.cfg.InlineECC {
		eccDecodeLine(buf)
	}
	return nil
}

// WriteLine implements Backing. Like ReadLine, a geometry-matched full
// line goes through a single allocate-and-overwrite instead of eight
// read-modify-write Accesses; the fill-on-write-miss is kept so the
// victim choice and writeback sequence match the word loop exactly.
//voltvet:hotpath
func (c *Cache) WriteLine(addr uint64, buf []byte) error {
	if len(buf) == c.cfg.LineBytes && addr&uint64(c.cfg.LineBytes-1) == 0 {
		return c.writeLineFast(addr, buf)
	}
	for i := 0; i < len(buf); i += 8 {
		var v uint64
		for k := 0; k < 8 && i+k < len(buf); k++ {
			v |= uint64(buf[i+k]) << (8 * k)
		}
		if _, err := c.Access(addr+uint64(i), 8, true, v, false); err != nil {
			return err
		}
	}
	return nil
}

//voltvet:hotpath
func (c *Cache) writeLineFast(addr uint64, buf []byte) error {
	if !c.enabled {
		// The word loop's bypass would read-modify-write the backing
		// line; a full-line overwrite makes the read redundant.
		c.stats.Bypasses++
		return c.backing.WriteLine(addr, buf) //voltvet:ignore VV-HOT006 deliberate backing seam: the next level is an L2 cache or DRAM, decided at wiring time; the dynamic zero-alloc gate covers both
	}
	tag, set, _ := c.index(addr)
	w := c.lookup(tag, set)
	if w < 0 {
		c.stats.Misses++
		var err error
		if w, err = c.fill(tag, set, false); err != nil {
			return err
		}
	} else {
		c.stats.Hits++
	}
	c.touch(w, set)
	if c.cfg.InlineECC {
		// Encode into scratch so the caller's buffer is not mutated.
		// fill has finished with scratch by this point.
		copy(c.scratch, buf)
		eccEncodeLine(c.scratch)
		c.dataRAM[w].WriteBytes(set*c.cfg.LineBytes, c.scratch)
	} else {
		c.dataRAM[w].WriteBytes(set*c.cfg.LineBytes, buf)
	}
	c.setTagEntry(w, set, c.tagEntry(w, set)|tagDirtyBit)
	c.contentGen++
	return nil
}

// CleanInvalidateAll writes back every dirty line and clears all valid
// bits. Data RAM contents are untouched — the paper's key observation.
func (c *Cache) CleanInvalidateAll() error {
	c.contentGen++
	for w := 0; w < c.cfg.Ways; w++ {
		for s := 0; s < c.sets; s++ {
			e := c.tagEntry(w, s)
			if e&tagValidBit == 0 {
				continue
			}
			if e&tagDirtyBit != 0 {
				c.dataRAM[w].ReadBytesInto(s*c.cfg.LineBytes, c.scratch)
				if c.cfg.InlineECC {
					eccDecodeLine(c.scratch)
				}
				if err := c.backing.WriteLine(c.lineAddr(e&tagMask, s), c.scratch); err != nil {
					return err
				}
				c.stats.Writebacks++
			}
			c.setTagEntry(w, s, e&^(tagValidBit|tagDirtyBit))
		}
	}
	return nil
}

// InvalidateAll clears every valid bit without writing anything back
// (IC IALLU semantics for i-caches). Data RAM contents are untouched.
//voltvet:hotpath
func (c *Cache) InvalidateAll() {
	c.contentGen++
	for w := 0; w < c.cfg.Ways; w++ {
		for s := 0; s < c.sets; s++ {
			e := c.tagEntry(w, s)
			if e&tagValidBit != 0 {
				c.setTagEntry(w, s, e&^(tagValidBit|tagDirtyBit))
			}
		}
	}
}

// CleanInvalidateVA cleans and invalidates the single line containing
// addr, if present (DC CIVAC).
//voltvet:hotpath
func (c *Cache) CleanInvalidateVA(addr uint64) error {
	tag, set, _ := c.index(addr)
	w := c.lookup(tag, set)
	if w < 0 {
		return nil
	}
	c.contentGen++
	e := c.tagEntry(w, set)
	if e&tagDirtyBit != 0 {
		c.dataRAM[w].ReadBytesInto(set*c.cfg.LineBytes, c.scratch)
		if c.cfg.InlineECC {
			eccDecodeLine(c.scratch)
		}
		if err := c.backing.WriteLine(c.lineAddr(tag, set), c.scratch); err != nil { //voltvet:ignore VV-HOT006 deliberate backing seam: the next level is an L2 cache or DRAM, decided at wiring time; the dynamic zero-alloc gate covers both
			return err
		}
		c.stats.Writebacks++
	}
	c.setTagEntry(w, set, e&^(tagValidBit|tagDirtyBit))
	return nil
}

// ZeroLineVA implements DC ZVA: allocate the line containing addr and
// write zeros into its data RAM. This is the only maintenance operation
// that modifies data RAM contents (§5.2.4) — and it is d-cache only.
//voltvet:hotpath
func (c *Cache) ZeroLineVA(addr uint64, secure bool) error {
	if !c.enabled {
		// Architecturally DC ZVA with the cache off zeroes memory
		// directly.
		lineAddr := addr &^ uint64(c.cfg.LineBytes-1)
		for i := range c.scratch {
			c.scratch[i] = 0
		}
		return c.backing.WriteLine(lineAddr, c.scratch) //voltvet:ignore VV-HOT006 deliberate backing seam: the next level is an L2 cache or DRAM, decided at wiring time; the dynamic zero-alloc gate covers both
	}
	c.contentGen++
	tag, set, _ := c.index(addr)
	w := c.lookup(tag, set)
	if w < 0 {
		var err error
		// ZVA allocates without a backing fill: pick a victim, write back
		// if dirty, then install the zero line.
		w, err = c.victim(set)
		if err != nil {
			return err
		}
		if e := c.tagEntry(w, set); e&tagValidBit != 0 && e&tagDirtyBit != 0 {
			c.dataRAM[w].ReadBytesInto(set*c.cfg.LineBytes, c.scratch)
			if c.cfg.InlineECC {
				eccDecodeLine(c.scratch)
			}
			if err := c.backing.WriteLine(c.lineAddr(e&tagMask, set), c.scratch); err != nil { //voltvet:ignore VV-HOT006 deliberate backing seam: the next level is an L2 cache or DRAM, decided at wiring time; the dynamic zero-alloc gate covers both
				return err
			}
			c.stats.Writebacks++
		}
	}
	// The all-zero line is its own ECC encoding (parity of zero is zero),
	// so zero words can be stored directly even for InlineECC RAMs.
	for i := 0; i < c.cfg.LineBytes; i += 8 {
		c.dataRAM[w].WriteUint64(set*c.cfg.LineBytes+i, 0)
	}
	entry := tag | tagValidBit | tagDirtyBit
	if !secure {
		entry |= tagNSBit
	}
	c.setTagEntry(w, set, entry)
	c.touch(w, set)
	return nil
}

// LineInfo is the tag-side metadata of one (way, set) as RAMINDEX sees it.
type LineInfo struct {
	Valid     bool
	Dirty     bool
	NonSecure bool
	Tag       uint64
	// Addr is the line's memory address if Valid.
	Addr uint64
}

// Line returns the tag metadata for (way, set).
//voltvet:hotpath
func (c *Cache) Line(way, set int) LineInfo {
	return ParseTagEntry(c.tagEntry(way, set), set, c.cfg)
}

// ParseTagEntry decodes a raw tag-RAM word (as read via RAMINDEX) into
// line metadata for the given set and cache geometry — the attacker-side
// post-processing that turns a tag dump into the *addresses* of the
// stolen lines.
//voltvet:hotpath
func ParseTagEntry(e uint64, set int, cfg Config) LineInfo {
	li := LineInfo{
		Valid:     e&tagValidBit != 0,
		Dirty:     e&tagDirtyBit != 0,
		NonSecure: e&tagNSBit != 0,
		Tag:       e & tagMask,
	}
	if li.Valid {
		li.Addr = (li.Tag*uint64(cfg.Sets()) + uint64(set)) * uint64(cfg.LineBytes)
	}
	return li
}

// RAMIndexData reads the 64-bit word at wordIndex of way's data RAM,
// exactly as the RAMINDEX debug operation does: no hit/miss logic, no
// valid-bit check. wordIndex counts 64-bit words from the start of the
// way (set·wordsPerLine + wordInLine).
//voltvet:hotpath
func (c *Cache) RAMIndexData(way, wordIndex int) (uint64, error) {
	if way < 0 || way >= c.cfg.Ways {
		return 0, fmt.Errorf("cache %s: RAMINDEX way %d out of range", c.cfg.Name, way)
	}
	if wordIndex < 0 || wordIndex*8 >= c.sets*c.cfg.LineBytes {
		return 0, fmt.Errorf("cache %s: RAMINDEX word %d out of range", c.cfg.Name, wordIndex)
	}
	return c.dataRAM[way].ReadUint64(wordIndex * 8), nil
}

// RAMIndexTag reads the raw tag entry for (way, set) via the debug path.
//voltvet:hotpath
func (c *Cache) RAMIndexTag(way, set int) (uint64, error) {
	if way < 0 || way >= c.cfg.Ways || set < 0 || set >= c.sets {
		return 0, fmt.Errorf("cache %s: RAMINDEX tag (%d,%d) out of range", c.cfg.Name, way, set)
	}
	return c.tagEntry(way, set), nil
}

// SecureLineAt reports whether the line holding the data-RAM word at
// wordIndex of way is a valid secure (NS=0) allocation — used by the
// TrustZone countermeasure to veto RAMINDEX reads.
//voltvet:hotpath
func (c *Cache) SecureLineAt(way, wordIndex int) bool {
	set := wordIndex * 8 / c.cfg.LineBytes
	if set >= c.sets {
		return false
	}
	li := c.Line(way, set)
	return li.Valid && !li.NonSecure
}

// WayBytes is the data capacity of one way.
func (c *Cache) WayBytes() int { return c.sets * c.cfg.LineBytes }

// DumpWay returns the raw contents of one way's data RAM — what an
// attacker reconstructs by sweeping RAMINDEX over the way.
func (c *Cache) DumpWay(way int) []byte {
	return c.dataRAM[way].ReadBytes(0, c.WayBytes())
}
