package cache

// Reference-model fuzzing: the cache (with its SRAM-backed tag and data
// arrays, write-back policy, maintenance operations and way locking) must
// behave exactly like a flat byte array under every architecturally
// visible operation sequence. Any divergence means the attack experiments
// could be measuring simulator artifacts instead of physics.

import (
	"fmt"
	"testing"

	"repro/internal/sim"
	"repro/internal/sram"
	"repro/internal/xrand"
)

// refModel is the architectural oracle: a flat memory image.
type refModel struct {
	mem []byte
}

func (r *refModel) read(addr uint64, size int) uint64 {
	var v uint64
	for i := 0; i < size; i++ {
		v |= uint64(r.mem[addr+uint64(i)]) << (8 * i)
	}
	return v
}

func (r *refModel) write(addr uint64, size int, v uint64) {
	for i := 0; i < size; i++ {
		r.mem[addr+uint64(i)] = byte(v >> (8 * i))
	}
}

func (r *refModel) zeroLine(addr uint64, lineBytes int) {
	base := addr &^ uint64(lineBytes-1)
	for i := 0; i < lineBytes; i++ {
		r.mem[base+uint64(i)] = 0
	}
}

func TestCacheMatchesReferenceModelUnderFuzz(t *testing.T) {
	const memBytes = 1 << 16
	seeds := []uint64{1, 2, 3, 4, 5}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			env := sim.NewEnv()
			back := newFlatBacking(64)
			c, err := New(env, Config{Name: "fuzz", SizeBytes: 4 * 1024, Ways: 2, LineBytes: 64},
				sram.DefaultRetentionModel(), seed, back)
			if err != nil {
				t.Fatal(err)
			}
			for _, a := range c.Arrays() {
				a.SetRail(0.8)
			}
			c.InvalidateAll()
			c.SetEnabled(true)

			ref := &refModel{mem: make([]byte, memBytes)}
			rng := xrand.New(seed * 7777)

			sizes := []int{1, 2, 4, 8}
			for op := 0; op < 20000; op++ {
				size := sizes[rng.Intn(len(sizes))]
				// Aligned address that never crosses a line.
				addr := uint64(rng.Intn(memBytes/size) * size)
				switch rng.Intn(10) {
				case 0, 1, 2, 3: // write
					v := rng.Uint64()
					if _, err := c.Access(addr, size, true, v, false); err != nil {
						t.Fatalf("op %d write: %v", op, err)
					}
					ref.write(addr, size, v)
				case 4, 5, 6, 7: // read
					got, err := c.Access(addr, size, false, 0, false)
					if err != nil {
						t.Fatalf("op %d read: %v", op, err)
					}
					mask := uint64(1)<<(8*uint(size)) - 1
					if size == 8 {
						mask = ^uint64(0)
					}
					if want := ref.read(addr, size) & mask; got != want {
						t.Fatalf("op %d: read %#x size %d = %#x, want %#x", op, addr, size, got, want)
					}
				case 8: // maintenance
					switch rng.Intn(3) {
					case 0:
						if err := c.CleanInvalidateVA(addr); err != nil {
							t.Fatal(err)
						}
					case 1:
						if err := c.CleanInvalidateAll(); err != nil {
							t.Fatal(err)
						}
					case 2:
						if err := c.ZeroLineVA(addr, false); err != nil {
							t.Fatal(err)
						}
						ref.zeroLine(addr, 64)
					}
				case 9: // toggle a way lock (never lock all ways)
					w := rng.Intn(2)
					other := 1 - w
					if c.WayLocked(other) {
						c.LockWay(other, false)
					}
					c.LockWay(w, rng.Bool())
				}
			}

			// Final coherence check: flush everything and compare the
			// backing store with the reference end to end.
			c.LockWay(0, false)
			c.LockWay(1, false)
			if err := c.CleanInvalidateAll(); err != nil {
				t.Fatal(err)
			}
			buf := make([]byte, 64)
			for addr := uint64(0); addr < memBytes; addr += 64 {
				if err := back.ReadLine(addr, buf); err != nil {
					t.Fatal(err)
				}
				for i := range buf {
					if buf[i] != ref.mem[addr+uint64(i)] {
						t.Fatalf("post-flush mismatch at %#x: %#x != %#x",
							addr+uint64(i), buf[i], ref.mem[addr+uint64(i)])
					}
				}
			}
		})
	}
}

// TestDisabledCacheMatchesReference: the bypass path must be coherent
// with prior cached writes after a flush.
func TestDisabledCacheMatchesReference(t *testing.T) {
	env := sim.NewEnv()
	back := newFlatBacking(64)
	c, err := New(env, Config{Name: "byp", SizeBytes: 2 * 1024, Ways: 2, LineBytes: 64},
		sram.DefaultRetentionModel(), 9, back)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range c.Arrays() {
		a.SetRail(0.8)
	}
	c.InvalidateAll()
	c.SetEnabled(true)
	if _, err := c.Access(0x100, 8, true, 0xABCD, false); err != nil {
		t.Fatal(err)
	}
	if err := c.CleanInvalidateAll(); err != nil {
		t.Fatal(err)
	}
	c.SetEnabled(false)
	v, err := c.Access(0x100, 8, false, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0xABCD {
		t.Fatalf("bypass read after flush = %#x", v)
	}
}
