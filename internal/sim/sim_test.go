package sim

import (
	"math"
	"strings"
	"testing"
)

func TestTimeString(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{500, "500ns"},
		{2 * Microsecond, "2µs"},
		{3 * Millisecond, "3ms"},
		{1500 * Millisecond, "1.5s"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("%d.String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestTimeConversions(t *testing.T) {
	if got := (2 * Second).Seconds(); got != 2 {
		t.Errorf("Seconds() = %v", got)
	}
	if got := (5 * Millisecond).Milliseconds(); got != 5 {
		t.Errorf("Milliseconds() = %v", got)
	}
}

func TestCelsiusToKelvin(t *testing.T) {
	if got := CelsiusToKelvin(-40); math.Abs(got-233.15) > 1e-9 {
		t.Errorf("CelsiusToKelvin(-40) = %v", got)
	}
	if got := CelsiusToKelvin(0); math.Abs(got-273.15) > 1e-9 {
		t.Errorf("CelsiusToKelvin(0) = %v", got)
	}
}

func TestEnvClock(t *testing.T) {
	e := NewEnv()
	if e.Now() != 0 {
		t.Fatal("fresh env must start at time 0")
	}
	e.Advance(5 * Millisecond)
	e.Advance(3 * Microsecond)
	if e.Now() != 5*Millisecond+3*Microsecond {
		t.Fatalf("Now() = %v", e.Now())
	}
}

func TestEnvAdvanceNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on negative Advance")
		}
	}()
	NewEnv().Advance(-1)
}

func TestEnvTemperature(t *testing.T) {
	e := NewEnv()
	if e.TemperatureC() != 25 {
		t.Fatalf("default temperature = %v, want 25", e.TemperatureC())
	}
	e.SetTemperatureC(-40)
	if e.TemperatureC() != -40 {
		t.Fatalf("temperature = %v", e.TemperatureC())
	}
	if math.Abs(e.TemperatureK()-233.15) > 1e-9 {
		t.Fatalf("TemperatureK = %v", e.TemperatureK())
	}
	if e.Log().Len() == 0 {
		t.Fatal("temperature change should be logged")
	}
}

func TestEventLogOrderingAndFilter(t *testing.T) {
	l := NewEventLog()
	l.Add(1, "pmic", "a")
	l.Add(2, "probe", "b")
	l.Add(3, "pmic", "c")
	evs := l.Events()
	if len(evs) != 3 || evs[0].Message != "a" || evs[2].Message != "c" {
		t.Fatalf("unexpected events: %v", evs)
	}
	pmic := l.Filter("pmic")
	if len(pmic) != 2 || pmic[1].Message != "c" {
		t.Fatalf("Filter(pmic) = %v", pmic)
	}
	subs := l.Subsystems()
	if len(subs) != 2 || subs[0] != "pmic" || subs[1] != "probe" {
		t.Fatalf("Subsystems() = %v", subs)
	}
}

func TestEventLogEventsIsCopy(t *testing.T) {
	l := NewEventLog()
	l.Add(1, "x", "orig")
	evs := l.Events()
	evs[0].Message = "mutated"
	if l.Events()[0].Message != "orig" {
		t.Fatal("Events() must return a copy")
	}
}

func TestEnvLogf(t *testing.T) {
	e := NewEnv()
	e.Advance(7 * Microsecond)
	e.Logf("attack", "step %d: %s", 2, "attach probe")
	evs := e.Log().Events()
	if len(evs) != 1 {
		t.Fatalf("expected 1 event, got %d", len(evs))
	}
	if evs[0].At != 7*Microsecond {
		t.Fatalf("event timestamp = %v", evs[0].At)
	}
	if !strings.Contains(evs[0].Message, "step 2: attach probe") {
		t.Fatalf("event message = %q", evs[0].Message)
	}
	if !strings.Contains(e.Log().String(), "attach probe") {
		t.Fatal("log String() should contain the message")
	}
}
