// Package sim provides the simulation clock, the physical environment
// (ambient temperature), and a structured event log shared by every
// subsystem of the Volt Boot reproduction.
//
// Time is discrete and measured in nanoseconds from the start of a
// scenario. Subsystems never tick continuously; instead they record the
// timestamps of the events that matter (a rail dropping below a cell's
// retention voltage, a refresh, a power-up) and integrate the physics
// lazily over the interval, which keeps a full attack run at
// O(cells + events) instead of O(cells × nanoseconds).
package sim

import (
	"fmt"
	"sort"
	"strings"
)

// Time is a simulation timestamp in nanoseconds.
type Time int64

// Convenient duration constants in simulation time units.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Seconds returns the timestamp expressed in seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Milliseconds returns the timestamp expressed in milliseconds.
func (t Time) Milliseconds() float64 { return float64(t) / float64(Millisecond) }

// String renders the time with an adaptive unit.
func (t Time) String() string {
	switch {
	case t < Microsecond:
		return fmt.Sprintf("%dns", int64(t))
	case t < Millisecond:
		return fmt.Sprintf("%.3gµs", float64(t)/float64(Microsecond))
	case t < Second:
		return fmt.Sprintf("%.4gms", float64(t)/float64(Millisecond))
	default:
		return fmt.Sprintf("%.4gs", float64(t)/float64(Second))
	}
}

// CelsiusToKelvin converts a temperature in degrees Celsius to Kelvin.
//voltvet:hotpath
func CelsiusToKelvin(c float64) float64 { return c + 273.15 }

// Env is the shared simulation environment: the clock and the ambient
// temperature seen by every die in the scenario. A thermal chamber changes
// the temperature; everything else reads it.
type Env struct {
	now Time
	// tempC is the ambient temperature in degrees Celsius.
	tempC float64
	log   *EventLog
}

// NewEnv returns an environment at time zero and room temperature (25°C)
// with an empty event log.
func NewEnv() *Env {
	return &Env{tempC: 25, log: NewEventLog()}
}

// NewQuietEnv returns an environment with no log sink attached: every
// Logf call is a cheap nil check, with no formatting and no event
// allocation. The parallel experiment runner uses quiet environments for
// its trial boards — the per-excursion decay logs of a megabyte-scale
// array are pure overhead when nobody reads them.
func NewQuietEnv() *Env {
	return &Env{tempC: 25}
}

// Now returns the current simulation time.
//voltvet:hotpath
func (e *Env) Now() Time { return e.now }

// Advance moves the clock forward by d. It panics on negative durations:
// simulated time never runs backwards.
//voltvet:hotpath
func (e *Env) Advance(d Time) {
	if d < 0 {
		panic("sim: Advance with negative duration")
	}
	e.now += d
}

// Rewind sets the clock and temperature to a previously observed point,
// bypassing Advance's forward-only invariant. It exists solely for
// snapshot restores (see soc.Snapshot): a restored trial re-lives the
// interval after the fork, so the clock legitimately runs backwards to
// the capture instant. The change is deliberately unlogged — restores
// happen on quiet trial environments and must not perturb event streams.
func (e *Env) Rewind(now Time, tempC float64) {
	e.now = now
	e.tempC = tempC
}

// TemperatureC returns the ambient temperature in degrees Celsius.
//voltvet:hotpath
func (e *Env) TemperatureC() float64 { return e.tempC }

// TemperatureK returns the ambient temperature in Kelvin.
//voltvet:hotpath
func (e *Env) TemperatureK() float64 { return CelsiusToKelvin(e.tempC) }

// SetTemperatureC sets the ambient temperature. The change is logged; the
// environment models an idealized chamber where the die instantly reaches
// the set point (the paper statically soaks boards for an hour, which this
// idealization stands in for).
func (e *Env) SetTemperatureC(c float64) {
	e.tempC = c
	e.Logf("env", "temperature set to %.1f°C", c)
}

// Log returns the environment's event log, or nil for a quiet
// environment.
func (e *Env) Log() *EventLog { return e.log }

// LogEnabled reports whether a log sink is attached. Callers assembling
// expensive log arguments (joins, renders) should gate on it; plain
// Logf calls are already free when disabled.
func (e *Env) LogEnabled() bool { return e.log != nil }

// SetLog attaches (or, with nil, detaches) the event log sink.
func (e *Env) SetLog(l *EventLog) { e.log = l }

// Logf records a formatted event attributed to a subsystem. When no sink
// is attached the call returns before any formatting or event allocation
// happens; callers assembling expensive arguments should additionally
// gate on LogEnabled.
//voltvet:hotpath
func (e *Env) Logf(subsystem, format string, args ...any) {
	if e.log == nil {
		return
	}
	e.log.Add(e.now, subsystem, fmt.Sprintf(format, args...)) //voltvet:ignore VV-HOT001 log formatting sits behind the nil-log fast path; campaigns attach no log
}

// Event is one timestamped entry in the scenario log.
type Event struct {
	At        Time
	Subsystem string
	Message   string
}

func (ev Event) String() string {
	return fmt.Sprintf("%12s  %-10s %s", ev.At, ev.Subsystem, ev.Message)
}

// EventLog is an append-only list of events, used both for debugging and to
// render the "attack execution steps" figure.
type EventLog struct {
	events []Event
}

// NewEventLog returns an empty log.
func NewEventLog() *EventLog { return &EventLog{} }

// Add appends an event.
//voltvet:hotpath
func (l *EventLog) Add(at Time, subsystem, message string) {
	l.events = append(l.events, Event{At: at, Subsystem: subsystem, Message: message})
}

// Events returns a copy of all events in insertion order.
func (l *EventLog) Events() []Event {
	out := make([]Event, len(l.events))
	copy(out, l.events)
	return out
}

// Len reports the number of recorded events.
func (l *EventLog) Len() int { return len(l.events) }

// Subsystems returns the sorted set of subsystems that logged at least one
// event.
func (l *EventLog) Subsystems() []string {
	set := map[string]bool{}
	for _, ev := range l.events {
		set[ev.Subsystem] = true
	}
	out := make([]string, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// Filter returns the events attributed to the given subsystem.
func (l *EventLog) Filter(subsystem string) []Event {
	var out []Event
	for _, ev := range l.events {
		if ev.Subsystem == subsystem {
			out = append(out, ev)
		}
	}
	return out
}

// String renders the whole log, one event per line.
func (l *EventLog) String() string {
	var b strings.Builder
	for _, ev := range l.events {
		b.WriteString(ev.String())
		b.WriteByte('\n')
	}
	return b.String()
}
