// Package voltboot is a full-system reproduction of "SRAM Has No Chill:
// Exploiting Power Domain Separation to Steal On-Chip Secrets" (Mahmod &
// Hicks, ASPLOS 2022) as a simulation library.
//
// The package is the public façade over the internal substrates:
//
//   - simulated evaluation boards (Raspberry Pi 3/4, i.MX53 QSB) with
//     SRAM-backed caches and register files, separated power domains, a
//     PMIC, PCB test pads, DRAM, boot ROM behaviour and a JTAG port;
//   - the Volt Boot attack orchestrator (probe a power pad, yank main
//     power, reboot, extract SRAM via RAMINDEX payloads or JTAG);
//   - the classic cold boot orchestrator it is contrasted with;
//   - every table and figure of the paper's evaluation as a reproducible
//     experiment function.
//
// # Quick start
//
//	sys, err := voltboot.NewSystem(voltboot.RaspberryPi4(), voltboot.Options{}, 42)
//	if err != nil { ... }
//	victim, _, _ := voltboot.VictimNOPFill(sys.Spec())
//	_ = sys.RunVictim(victim)
//	ext, err := sys.VoltBootCaches(voltboot.DefaultAttackConfig())
//	// ext.Dumps[core].L1I[way] now holds the stolen cache images.
//
// Everything stochastic derives from the seed: identical seeds give
// bit-identical silicon, noise and results.
package voltboot

import (
	"repro/internal/board"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/soc"
)

// Re-exported configuration and result types. These aliases are the
// supported names; the internal packages are implementation detail.
type (
	// DeviceSpec describes one evaluation platform (Table 2/3).
	DeviceSpec = soc.DeviceSpec
	// Options are the §8 countermeasure switches.
	Options = soc.Options
	// BootImage is a payload offered to the boot chain.
	BootImage = soc.BootImage
	// AttackConfig sets probe current, power-off time and run budget.
	AttackConfig = core.AttackConfig
	// ProbeSpec describes the attacker's bench supply.
	ProbeSpec = core.ProbeSpec
	// CacheExtraction is the result of a cache-targeting attack.
	CacheExtraction = core.CacheExtraction
	// RegisterExtraction is the result of a register-targeting attack.
	RegisterExtraction = core.RegisterExtraction
	// IRAMExtraction is the result of an iRAM-targeting attack.
	IRAMExtraction = core.IRAMExtraction
	// Step is one entry of an attack trace.
	Step = core.Step
	// Time is a simulation timestamp/duration in nanoseconds.
	Time = sim.Time
)

// Simulation time units.
const (
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// RaspberryPi4 returns the BCM2711 platform spec.
func RaspberryPi4() DeviceSpec { return soc.BCM2711() }

// RaspberryPi3 returns the BCM2837 platform spec.
func RaspberryPi3() DeviceSpec { return soc.BCM2837() }

// IMX53QSB returns the i.MX53 quick-start-board platform spec.
func IMX53QSB() DeviceSpec { return soc.IMX53() }

// Devices returns all modelled platforms in Table 2 order.
func Devices() []DeviceSpec { return soc.Catalog() }

// DefaultAttackConfig returns the paper's setup: a 3.5 A bench supply on
// the Table 3 pad and a two-second power gap.
func DefaultAttackConfig() AttackConfig { return core.DefaultAttackConfig() }

// System couples a simulation environment with one powered evaluation
// board — the object almost every workflow starts from.
type System struct {
	// Env is the simulation clock and thermal environment.
	Env *sim.Env
	// Board is the wired platform; Board.SoC exposes the chip.
	Board *board.Board
}

// NewSystem builds the platform described by spec with the given
// countermeasures and silicon seed, and connects main power.
func NewSystem(spec DeviceSpec, opts Options, seed uint64) (*System, error) {
	env := sim.NewEnv()
	b, err := board.New(env, spec, opts, seed)
	if err != nil {
		return nil, err
	}
	b.ConnectMain()
	return &System{Env: env, Board: b}, nil
}

// Spec returns the platform description.
func (s *System) Spec() DeviceSpec { return s.Board.Spec() }

// SoC exposes the chip for direct inspection (physical ground truth,
// JTAG, DRAM staging).
func (s *System) SoC() *soc.SoC { return s.Board.SoC }

// RunVictim boots and runs a victim image on every core, leaving the
// machine in the "captured device" state the attack model starts from.
func (s *System) RunVictim(img *BootImage) error {
	return core.RunVictim(s.Board, img, 100_000_000)
}

// VoltBootCaches executes the §6.1 attack against the L1 caches.
func (s *System) VoltBootCaches(cfg AttackConfig) (*CacheExtraction, error) {
	return core.VoltBootCaches(s.Board, cfg)
}

// VoltBootRegisters executes the §7.2 attack against the vector
// registers.
func (s *System) VoltBootRegisters(cfg AttackConfig) (*RegisterExtraction, error) {
	return core.VoltBootRegisters(s.Board, cfg)
}

// VoltBootIRAM executes the §7.3 attack against the on-chip RAM of
// internally booting, JTAG-equipped parts.
func (s *System) VoltBootIRAM(cfg AttackConfig) (*IRAMExtraction, error) {
	return core.VoltBootIRAM(s.Board, cfg)
}

// ColdBootCaches runs the §3 baseline: thermal soak, unprobed power
// cycle, same extraction.
func (s *System) ColdBootCaches(tempC float64, offTime Time) (*CacheExtraction, error) {
	return core.ColdBootCaches(s.Board, tempC, offTime, 100_000_000)
}

// Victim image builders, re-exported from the attack core.

// VictimNOPFill builds the §7.1.1 victim: a cache-filling NOP sled. The
// returned words are the ground-truth machine code.
func VictimNOPFill(spec DeviceSpec) (*BootImage, []uint32, error) {
	return core.VictimNOPFillImage(spec)
}

// VictimPatternFill builds a victim that writes a byte pattern through
// the d-cache (count 8-byte words at base).
func VictimPatternFill(base uint64, count int, pattern byte) (*BootImage, error) {
	return core.VictimPatternFillImage(base, count, pattern)
}

// VictimVectorFill builds the §7.2 victim filling v0..v31 with 0xAA/0xFF.
func VictimVectorFill() (*BootImage, error) {
	return core.VictimVectorFillImage()
}

// VictimVectorKeys builds a TRESOR-style victim that loads the given
// 16-byte round keys into vector registers without touching DRAM.
func VictimVectorKeys(roundKeys [][]byte) (*BootImage, error) {
	return core.VictimVectorKeyImage(roundKeys)
}
