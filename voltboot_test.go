package voltboot

import (
	"bytes"
	"testing"
)

func TestQuickstartFlow(t *testing.T) {
	sys, err := NewSystem(RaspberryPi4(), Options{}, 42)
	if err != nil {
		t.Fatal(err)
	}
	victim, groundTruth, err := VictimNOPFill(sys.Spec())
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.RunVictim(victim); err != nil {
		t.Fatal(err)
	}
	ext, err := sys.VoltBootCaches(DefaultAttackConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(ext.Dumps) != 4 {
		t.Fatalf("dumps for %d cores", len(ext.Dumps))
	}
	nop := []byte{byte(groundTruth[0]), byte(groundTruth[0] >> 8), byte(groundTruth[0] >> 16), byte(groundTruth[0] >> 24)}
	if len(FindPattern(ext.Dumps[0].L1I[0], nop)) == 0 {
		t.Fatal("extracted i-cache does not contain the victim's code")
	}
}

func TestKeyTheftFlow(t *testing.T) {
	sys, err := NewSystem(RaspberryPi4(), Options{}, 7)
	if err != nil {
		t.Fatal(err)
	}
	key := []byte("full disk encKEY")
	sched, err := ExpandAES128Key(key)
	if err != nil {
		t.Fatal(err)
	}
	var rks [][]byte
	for r := 0; r <= 10; r++ {
		rks = append(rks, AESRoundKey(sched, r))
	}
	victim, err := VictimVectorKeys(rks)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.RunVictim(victim); err != nil {
		t.Fatal(err)
	}
	ext, err := sys.VoltBootRegisters(DefaultAttackConfig())
	if err != nil {
		t.Fatal(err)
	}
	recovered, err := InvertAES128Schedule(ext.PerCore[0][3], 3)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(recovered, key) {
		t.Fatalf("recovered %x, want %x", recovered, key)
	}
}

func TestColdBootBaselineFails(t *testing.T) {
	sys, err := NewSystem(RaspberryPi4(), Options{}, 9)
	if err != nil {
		t.Fatal(err)
	}
	victim, err := VictimPatternFill(0x100000, 2048, 0xA5)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.RunVictim(victim); err != nil {
		t.Fatal(err)
	}
	truth := sys.SoC().Cores[0].L1D.DumpWay(0)
	ext, err := sys.ColdBootCaches(-40, 5*Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if acc := RetentionAccuracy(truth, ext.Dumps[0].L1D[0]); acc > 0.6 {
		t.Fatalf("cold boot accuracy = %v; must be ≈0.5", acc)
	}
}

func TestDeviceCatalogExported(t *testing.T) {
	if len(Devices()) != 3 {
		t.Fatal("expected 3 devices")
	}
	if RaspberryPi4().SoCName != "BCM2711" || IMX53QSB().TestPad != "SH13" ||
		RaspberryPi3().TestPad != "PP58" {
		t.Fatal("device specs wrong")
	}
}

func TestAESCTRExported(t *testing.T) {
	sched, err := ExpandAES128Key([]byte("sixteen byte key"))
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("secret disk contents")
	data := append([]byte(nil), msg...)
	if err := AESCTRXor(sched, 1, data); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(data, msg) {
		t.Fatal("CTR no-op")
	}
	if err := AESCTRXor(sched, 1, data); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, msg) {
		t.Fatal("CTR round trip failed")
	}
}

func TestDeterministicAcrossSystems(t *testing.T) {
	run := func() []byte {
		sys, err := NewSystem(RaspberryPi4(), Options{}, 1234)
		if err != nil {
			t.Fatal(err)
		}
		victim, err := VictimPatternFill(0x100000, 512, 0x3C)
		if err != nil {
			t.Fatal(err)
		}
		if err := sys.RunVictim(victim); err != nil {
			t.Fatal(err)
		}
		ext, err := sys.VoltBootCaches(DefaultAttackConfig())
		if err != nil {
			t.Fatal(err)
		}
		return ext.Dumps[0].L1D[0]
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatal("same seed must reproduce the identical extraction")
	}
}
