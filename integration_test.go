package voltboot

// Integration tests exercising multi-device campaigns and cross-cutting
// behaviours through the public API only.

import (
	"bytes"
	"testing"
)

// TestCampaignAcrossAllDevices runs the headline attack on every modelled
// platform in one go — the Table 2 "generality" claim.
func TestCampaignAcrossAllDevices(t *testing.T) {
	for _, spec := range Devices() {
		spec := spec
		t.Run(spec.SoCName, func(t *testing.T) {
			sys, err := NewSystem(spec, Options{}, 0xCA4A)
			if err != nil {
				t.Fatal(err)
			}
			if spec.IRAMBytes > 0 {
				// iRAM platform: JTAG path.
				if err := sys.SoC().Boot(nil); err != nil {
					t.Fatal(err)
				}
				secret := bytes.Repeat([]byte{0x42}, 4096)
				if err := sys.SoC().JTAGWriteIRAM(0x8000, secret); err != nil {
					t.Fatal(err)
				}
				ext, err := sys.VoltBootIRAM(DefaultAttackConfig())
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(ext.Image[0x8000:0x9000], secret) {
					t.Fatal("iRAM secret not recovered")
				}
				return
			}
			// Cache platform: RAMINDEX path.
			victim, err := VictimPatternFill(0x100000, 1024, 0x42)
			if err != nil {
				t.Fatal(err)
			}
			if err := sys.RunVictim(victim); err != nil {
				t.Fatal(err)
			}
			truth := sys.SoC().Cores[0].L1D.DumpWay(0)
			ext, err := sys.VoltBootCaches(DefaultAttackConfig())
			if err != nil {
				t.Fatal(err)
			}
			if acc := RetentionAccuracy(truth, ext.Dumps[0].L1D[0]); acc != 1.0 {
				t.Fatalf("%s extraction accuracy = %v", spec.Board, acc)
			}
		})
	}
}

// TestFootnote3Defense verifies the paper's footnote 3: secrets hidden
// inside the boot-ROM scratchpad region are destroyed before the attacker
// can look.
func TestFootnote3Defense(t *testing.T) {
	spec := IMX53QSB()
	sys, err := NewSystem(spec, Options{}, 0xF00)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.SoC().Boot(nil); err != nil {
		t.Fatal(err)
	}
	// Hide the secret INSIDE the scratchpad range (0x83C-0x18CC).
	secret := bytes.Repeat([]byte{0x5E}, 256)
	const hideAt = 0x1000
	if err := sys.SoC().JTAGWriteIRAM(hideAt, secret); err != nil {
		t.Fatal(err)
	}
	ext, err := sys.VoltBootIRAM(DefaultAttackConfig())
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(ext.Image[hideAt:hideAt+256], secret) {
		t.Fatal("secret inside the scratchpad survived — footnote 3 defense broken")
	}
}

// TestRepeatedAttacksOnSameDevice runs Volt Boot twice in a row: the
// second attack must extract the FIRST extraction payload's own residue
// era, not fail — the device remains attackable indefinitely.
func TestRepeatedAttacksOnSameDevice(t *testing.T) {
	sys, err := NewSystem(RaspberryPi4(), Options{}, 0x2E9EA7)
	if err != nil {
		t.Fatal(err)
	}
	victim, err := VictimPatternFill(0x100000, 1024, 0x77)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.RunVictim(victim); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.VoltBootCaches(DefaultAttackConfig()); err != nil {
		t.Fatal(err)
	}
	// Second pass: stage fresh victim state and attack again.
	if err := sys.RunVictim(victim); err != nil {
		t.Fatal(err)
	}
	truth := sys.SoC().Cores[0].L1D.DumpWay(0)
	ext2, err := sys.VoltBootCaches(DefaultAttackConfig())
	if err != nil {
		t.Fatal(err)
	}
	if acc := RetentionAccuracy(truth, ext2.Dumps[0].L1D[0]); acc != 1.0 {
		t.Fatalf("second attack accuracy = %v", acc)
	}
}

// TestAllDefensesSimultaneously: a fully hardened device resists every
// attack vector in this repository.
func TestAllDefensesSimultaneously(t *testing.T) {
	opts := Options{
		MBISTReset:        true,
		PowerToggleReset:  true,
		TrustZone:         true,
		AuthenticatedBoot: true,
	}
	sys, err := NewSystem(RaspberryPi4(), opts, 0xDEF)
	if err != nil {
		t.Fatal(err)
	}
	victim, err := VictimPatternFill(0x100000, 1024, 0x13)
	if err != nil {
		t.Fatal(err)
	}
	victim.Signature = sys.SoC().SignImage(victim)
	if err := sys.RunVictim(victim); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.VoltBootCaches(DefaultAttackConfig()); err == nil {
		t.Fatal("hardened device booted the unsigned extraction payload")
	}
	if _, err := sys.VoltBootRegisters(DefaultAttackConfig()); err == nil {
		t.Fatal("hardened device booted the unsigned register payload")
	}
}

// TestSeedIsolation: different seeds produce different silicon (the
// fingerprints differ) but identical *architecture* (the attack works on
// both).
func TestSeedIsolation(t *testing.T) {
	images := make([][]byte, 2)
	for i, seed := range []uint64{101, 202} {
		sys, err := NewSystem(RaspberryPi4(), Options{}, seed)
		if err != nil {
			t.Fatal(err)
		}
		// No victim: extract the raw power-up fingerprint.
		ext, err := sys.VoltBootCaches(DefaultAttackConfig())
		if err != nil {
			t.Fatal(err)
		}
		images[i] = ext.Dumps[0].L1D[0]
	}
	hd := FractionalHD(images[0], images[1])
	if hd < 0.4 || hd > 0.6 {
		t.Fatalf("different chips' fingerprints HD = %v, want ≈0.5", hd)
	}
}
