#!/bin/sh
# CI gate: vet, build, race-enabled tests (the parallel runner's
# determinism tests raise GOMAXPROCS themselves, so a single-core CI
# machine still exercises multi-worker execution), and a one-iteration
# smoke over the hot-path micro-benchmarks. Equivalent to `make check`.
set -eu
cd "$(dirname "$0")/.."

echo "==> go vet ./..."
go vet ./...

echo "==> voltvet ./... (determinism / hot-path closure / snapshot / lock / error invariants; 15s budget)"
# Name every family explicitly so a family rename (or a typo that drops
# one) fails the gate instead of silently narrowing it.
vv_start=$(date +%s)
go run ./cmd/voltvet -checks det,map,hot,snap,locks,err ./...
vv_elapsed=$(( $(date +%s) - vv_start ))
echo "    voltvet finished in ${vv_elapsed}s"
if [ "$vv_elapsed" -gt 15 ]; then
	echo "error: voltvet took ${vv_elapsed}s, over its 15s CI budget; see BenchmarkVoltvetModule" >&2
	exit 1
fi

echo "==> go build ./..."
go build ./...

echo "==> go test -race -short ./..."
go test -race -short ./...

echo "==> campaign service: full -race pass (queue, cache single-flight, cancellation)"
go test -race -count=1 ./internal/campaign/ ./internal/runner/ ./internal/api/

echo "==> result store: crash-safety + eviction under -race"
go test -race -count=1 ./internal/store/

echo "==> fabric: N-node harness under -race (sharded sweeps, restart, drain handback)"
go test -race -count=1 ./internal/fabric/
go test -race -count=1 -run 'TestFabric' ./internal/api/

echo "==> glitch engine: full -race pass (triggers, faults, snapshot compose, cross-domain isolation)"
go test -race -count=1 ./internal/glitch/

echo "==> side-channel toolkit: full -race pass (trace capture, SPA, CPA)"
go test -race -count=1 ./internal/trace/ ./internal/sca/

echo "==> sca-cpa smoke (full 16-byte AES key recovery at the documented trace count)"
go test -run 'TestSCACPARecoversKey' -count=1 ./internal/experiments/

echo "==> benchmark smoke (1 iteration)"
go test -run '^$' -bench 'ResolveDecay|PowerUpAll|FractionalHD|FractionOnes|SnapshotRestore' -benchtime 1x ./internal/sram/ ./internal/analysis/
go test -run '^$' -bench 'CPUStep|CacheAccessHit|CacheAccessMiss|OSWorkloadIPS' -benchtime 1x ./internal/soc/ ./internal/cache/ ./internal/kernel/
go test -run '^$' -bench 'CPUStepGlitchDisarmed' -benchtime 1x ./internal/glitch/
go test -run '^$' -bench 'CPUStepTraceDisarmed|CPUStepTraceArmed' -benchtime 1x ./internal/trace/
go test -run '^$' -bench 'Figure7ColdBoot|Figure8OSScenario' -benchtime 1x ./internal/experiments/

echo "==> allocation-free fast-path gates"
go test -run 'StepSteadyStateZeroAlloc' -count=1 ./internal/soc/
go test -run 'StepGlitchDisarmedZeroAlloc' -count=1 ./internal/glitch/
go test -run 'StepTraceArmedZeroAlloc|StepTraceDisarmedZeroAlloc' -count=1 ./internal/trace/
go test -run 'AccessHitPathAllocFree|LineTransferAllocFree' -count=1 ./internal/cache/

echo "OK"
