#!/bin/sh
# CI gate: vet, build, race-enabled tests (the parallel runner's
# determinism tests raise GOMAXPROCS themselves, so a single-core CI
# machine still exercises multi-worker execution), and a one-iteration
# smoke over the hot-path micro-benchmarks. Equivalent to `make check`.
set -eu
cd "$(dirname "$0")/.."

echo "==> go vet ./..."
go vet ./...

echo "==> go build ./..."
go build ./...

echo "==> go test -race -short ./..."
go test -race -short ./...

echo "==> benchmark smoke (1 iteration)"
go test -run '^$' -bench 'ResolveDecay|PowerUpAll|FractionalHD|FractionOnes' -benchtime 1x ./internal/sram/ ./internal/analysis/

echo "OK"
