#!/bin/sh
# Performance record keeper: runs the repository's headline benchmarks
# and appends the results as BENCH_<n>.json at the repo root (the lowest
# unused n), tagged with the date and commit so regressions can be
# bisected against the recorded history.
#
# Usage: scripts/bench.sh [benchtime]
#   benchtime  go-test -benchtime value for the experiment benchmarks
#              (default 1x; the micro-benchmarks always use 2s).
set -eu
cd "$(dirname "$0")/.."

BENCHTIME="${1:-1x}"

n=1
while [ -e "BENCH_${n}.json" ]; do
	n=$((n + 1))
done
out="BENCH_${n}.json"
if [ -e "$out" ]; then
	echo "error: $out already exists; refusing to overwrite a recorded run" >&2
	exit 1
fi

tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT

echo "==> micro-benchmarks (2s each)"
go test -run '^$' -bench 'BenchmarkCPUStep$' -benchtime 2s ./internal/soc/ | tee -a "$tmp"
go test -run '^$' -bench 'BenchmarkCacheAccessHit$|BenchmarkCacheAccessMiss$' -benchtime 2s ./internal/cache/ | tee -a "$tmp"
go test -run '^$' -bench 'BenchmarkOSWorkloadIPS$' -benchtime 2s ./internal/kernel/ | tee -a "$tmp"
go test -run '^$' -bench 'BenchmarkCPUStepGlitchDisarmed$' -benchtime 2s ./internal/glitch/ | tee -a "$tmp"
go test -run '^$' -bench 'BenchmarkCPUStepTraceDisarmed$|BenchmarkCPUStepTraceArmed$|BenchmarkTraceCapture$' -benchtime 2s ./internal/trace/ | tee -a "$tmp"
go test -run '^$' -bench 'BenchmarkCPACorrelate$' -benchtime 2s ./internal/sca/ | tee -a "$tmp"

echo "==> voltvet whole-module static analysis (1 iteration; seconds-scale)"
go test -run '^$' -bench 'BenchmarkVoltvetModule$' -benchtime 1x ./internal/lint/ | tee -a "$tmp"

echo "==> campaign service throughput (2s)"
go test -run '^$' -bench 'BenchmarkCampaignSubmitCached$' -benchtime 2s ./internal/api/ | tee -a "$tmp"

echo "==> result store (2s each)"
go test -run '^$' -bench 'BenchmarkStoreGet$|BenchmarkStoreGetDisk$|BenchmarkStorePut$' -benchtime 2s ./internal/store/ | tee -a "$tmp"

echo "==> fabric sharded sweep (2s)"
go test -run '^$' -bench 'BenchmarkFabricSweepCached$' -benchtime 2s ./internal/api/ | tee -a "$tmp"

echo "==> experiment benchmarks (-benchtime ${BENCHTIME})"
go test -run '^$' -bench 'BenchmarkFigure7ColdBoot$|BenchmarkFigure8OSScenario$|BenchmarkTable4ArraySweep$|BenchmarkGlitchSearch$' \
	-benchtime "$BENCHTIME" ./internal/experiments/ | tee -a "$tmp"

# The commit field is always the clean HEAD hash; working-tree state is
# recorded separately so tooling can compare commits without parsing a
# "-dirty" suffix out of the hash.
commit="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"
dirty=false
if ! git diff-index --quiet HEAD -- 2>/dev/null; then
	dirty=true
fi

# Environment metadata: numbers are only comparable across runs on the
# same toolchain and hardware, so record both alongside the results.
goversion="$(go version | awk '{print $3}')"
gomaxprocs="${GOMAXPROCS:-$(getconf _NPROCESSORS_ONLN)}"
cpumodel="$(awk -F': ' '/model name/ {print $2; exit}' /proc/cpuinfo 2>/dev/null || echo unknown)"

awk -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" \
	-v commit="$commit" -v dirty="$dirty" \
	-v goversion="$goversion" -v gomaxprocs="$gomaxprocs" -v cpumodel="$cpumodel" '
BEGIN {
	printf "{\n  \"date\": \"%s\",\n  \"commit\": \"%s\",\n  \"dirty\": %s,\n", date, commit, dirty
	printf "  \"go_version\": \"%s\",\n  \"gomaxprocs\": %s,\n  \"cpu_model\": \"%s\",\n", goversion, gomaxprocs, cpumodel
	printf "  \"benchmarks\": ["
	sep = ""
}
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name)
	nsop = ""
	for (i = 2; i < NF; i++) {
		if ($(i + 1) == "ns/op") nsop = $i
	}
	if (nsop == "") next
	printf "%s\n    {\"name\": \"%s\", \"ns_per_op\": %s}", sep, name, nsop
	sep = ","
}
END { printf "\n  ]\n}\n" }
' "$tmp" > "$out"

echo "==> wrote $out"
cat "$out"
