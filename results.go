package voltboot

import (
	"repro/internal/aes"
	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/soc"
)

// This file re-exports the experiment harness (one function per table and
// figure of the paper) and the analysis primitives users need to score
// their own extractions.

// Experiment result aliases.
type (
	// Table1Result is the §3 cold boot error table.
	Table1Result = experiments.Table1Result
	// Figure3Result is the cold-booted d-cache way image.
	Figure3Result = experiments.Figure3Result
	// Table2Result lists the evaluated platforms.
	Table2Result = experiments.Table2Result
	// Table3Result lists the probe pads.
	Table3Result = experiments.Table3Result
	// Figure4Result is the power topology rendering.
	Figure4Result = experiments.Figure4Result
	// Figure5Result is the attack step trace.
	Figure5Result = experiments.Figure5Result
	// Figure6Result is the pad-map substitution for the board photos.
	Figure6Result = experiments.Figure6Result
	// Figure7Result is the bare-metal i-cache attack snapshot.
	Figure7Result = experiments.Figure7Result
	// Figure8Result is the OS-scenario cache snapshot.
	Figure8Result = experiments.Figure8Result
	// Table4Result is the d-cache extraction-vs-array-size table.
	Table4Result = experiments.Table4Result
	// Section72Result is the vector-register retention result.
	Section72Result = experiments.Section72Result
	// AccessibilityResult is the §6.2 boot-clobbering measurement.
	AccessibilityResult = experiments.AccessibilityResult
	// Figure9Result is the iRAM bitmap extraction.
	Figure9Result = experiments.Figure9Result
	// Figure10Result is the iRAM error-locality profile.
	Figure10Result = experiments.Figure10Result
	// CountermeasuresResult is the §8 defense survey.
	CountermeasuresResult = experiments.CountermeasuresResult
	// ProbeSweepResult is Ablation A (probe current vs accuracy).
	ProbeSweepResult = experiments.ProbeSweepResult
	// RetentionSweepResult is Ablation B (temperature/time grid).
	RetentionSweepResult = experiments.RetentionSweepResult
	// DRAMColdBootResult is Ablation C (classic DRAM cold boot).
	DRAMColdBootResult = experiments.DRAMColdBootResult
	// ImprintResult is Ablation D (aging/imprint baseline, §9.2).
	ImprintResult = experiments.ImprintResult
	// HistoryTheftResult is Ablation E (TLB access-pattern theft).
	HistoryTheftResult = experiments.HistoryTheftResult
	// CaSELockResult is the §7.1.2 cache-locking comparison.
	CaSELockResult = experiments.CaSELockResult
	// WarmRebootResult is Ablation F (BootJacker baseline vs TCG reset).
	WarmRebootResult = experiments.WarmRebootResult
	// ContextSwitchResult is Ablation G (scheduler-dependent exposure).
	ContextSwitchResult = experiments.ContextSwitchResult
	// PUFCloneResult is Ablation H (PUF cloning via the extraction path).
	PUFCloneResult = experiments.PUFCloneResult
	// MCUAttackResult is the microcontroller extension of the attack.
	MCUAttackResult = experiments.MCUAttackResult
	// TLBExtraction is the result of a TLB-history attack.
	TLBExtraction = core.TLBExtraction
)

// Table1 reproduces Table 1 (cold boot on SRAM is ineffective).
func Table1(seed uint64) (*Table1Result, error) { return experiments.Table1(seed) }

// Figure3 reproduces Figure 3 (cold-booted d-cache is power-on noise).
func Figure3(seed uint64) (*Figure3Result, error) { return experiments.Figure3(seed) }

// Table2 reproduces Table 2 (evaluated platforms).
func Table2() *Table2Result { return experiments.Table2() }

// Table3 reproduces Table 3 (probe pads and domains).
func Table3() *Table3Result { return experiments.Table3() }

// Figure4 reproduces Figure 4 (PMIC/power topology).
func Figure4(seed uint64) (*Figure4Result, error) { return experiments.Figure4(seed) }

// Figure5 reproduces Figure 5 (attack execution steps).
func Figure5(seed uint64) (*Figure5Result, error) { return experiments.Figure5(seed) }

// Figure6 substitutes Figure 6 (probe attachment points).
func Figure6() *Figure6Result { return experiments.Figure6() }

// Figure7 reproduces Figure 7 (bare-metal i-cache retention, both SoCs).
func Figure7(seed uint64) ([]*Figure7Result, error) { return experiments.Figure7(seed) }

// Figure8 reproduces Figure 8 (OS-scenario cache snapshots).
func Figure8(seed uint64) (*Figure8Result, error) { return experiments.Figure8(seed) }

// Table4 reproduces Table 4 (d-cache extraction vs array size).
func Table4(seed uint64) (*Table4Result, error) { return experiments.Table4(seed) }

// Section72 reproduces the §7.2 register retention experiment.
func Section72(seed uint64, spec DeviceSpec) (*Section72Result, error) {
	return experiments.Section72(seed, spec)
}

// Accessibility reproduces the §6.2 accessible-memory measurement.
func Accessibility(seed uint64) (*AccessibilityResult, error) {
	return experiments.Accessibility(seed)
}

// Figure9 reproduces Figure 9 (i.MX53 iRAM bitmap extraction).
func Figure9(seed uint64) (*Figure9Result, error) { return experiments.Figure9(seed) }

// Figure10 reproduces Figure 10 (iRAM error locality).
func Figure10(seed uint64) (*Figure10Result, error) { return experiments.Figure10(seed) }

// Countermeasures reproduces the §8 defense survey.
func Countermeasures(seed uint64) (*CountermeasuresResult, error) {
	return experiments.Countermeasures(seed)
}

// ProbeCurrentSweep runs Ablation A.
func ProbeCurrentSweep(seed uint64) (*ProbeSweepResult, error) {
	return experiments.ProbeCurrentSweep(seed)
}

// RetentionSweep runs Ablation B.
func RetentionSweep(seed uint64) *RetentionSweepResult {
	return experiments.RetentionSweep(seed)
}

// DRAMColdBoot runs Ablation C.
func DRAMColdBoot(seed uint64) (*DRAMColdBootResult, error) {
	return experiments.DRAMColdBoot(seed)
}

// ImprintBaseline runs Ablation D (aging attacks vs Volt Boot).
func ImprintBaseline(seed uint64) *ImprintResult {
	return experiments.ImprintBaseline(seed)
}

// HistoryTheft runs Ablation E (microarchitectural history theft).
func HistoryTheft(seed uint64) (*HistoryTheftResult, error) {
	return experiments.HistoryTheft(seed)
}

// CaSELock runs the §7.1.2 cache-locking comparison.
func CaSELock(seed uint64) (*CaSELockResult, error) {
	return experiments.CaSELock(seed)
}

// WarmReboot runs Ablation F (warm-reboot baseline and TCG mitigation).
func WarmReboot(seed uint64) (*WarmRebootResult, error) {
	return experiments.WarmReboot(seed)
}

// ContextSwitchLeak runs Ablation G (register theft under multitasking).
func ContextSwitchLeak(seed uint64) (*ContextSwitchResult, error) {
	return experiments.ContextSwitchLeak(seed)
}

// PUFClone runs Ablation H (cloning an SRAM PUF via cache extraction).
func PUFClone(seed uint64) (*PUFCloneResult, error) {
	return experiments.PUFClone(seed)
}

// MCUAttack runs the microcontroller extension (SRAM-as-main-memory).
func MCUAttack(seed uint64) (*MCUAttackResult, error) {
	return experiments.MCUAttack(seed)
}

// GenericMCU returns the Cortex-M-class device spec used by MCUAttack.
func GenericMCU() DeviceSpec { return soc.GenericMCU() }

// Analysis primitives.

// FractionalHD returns the Hamming distance between two equal-length
// images normalized to [0, 1].
func FractionalHD(a, b []byte) float64 { return analysis.FractionalHD(a, b) }

// RetentionAccuracy returns 1 − FractionalHD.
func RetentionAccuracy(stored, extracted []byte) float64 {
	return analysis.RetentionAccuracy(stored, extracted)
}

// FindPattern returns the offsets of needle inside haystack.
func FindPattern(haystack, needle []byte) []int { return analysis.FindPattern(haystack, needle) }

// AES key-schedule tooling for key-theft workflows.

// ExpandAES128Key expands a 16-byte key into its 176-byte schedule.
func ExpandAES128Key(key []byte) ([]byte, error) { return aes.ExpandKey128(key) }

// AESRoundKey slices round key r (0–10) from a schedule.
func AESRoundKey(schedule []byte, r int) []byte { return aes.RoundKey(schedule, r) }

// InvertAES128Schedule recovers the master key from any single round key
// — why extracting one round key from a vector register breaks
// TRESOR-style on-chip crypto.
func InvertAES128Schedule(roundKey []byte, round int) ([]byte, error) {
	return aes.InvertSchedule128(roundKey, round)
}

// AESCTRXor encrypts/decrypts in place with AES-128-CTR (an involution).
func AESCTRXor(schedule []byte, nonce uint64, data []byte) error {
	return aes.CTRXor(schedule, nonce, data)
}

// FoundKey is one key-schedule hit from a memory-image scan.
type FoundKey = aes.FoundKey

// FindKeySchedules scans a raw memory image (a cache dump, an iRAM dump)
// for AES-128 key schedules — the classic aeskeyfind post-processing of
// §6.1 step 4. maxErrors tolerates corrupted schedule bytes (0 for Volt
// Boot dumps, which are exact).
func FindKeySchedules(image []byte, maxErrors int) []FoundKey {
	return aes.FindKeySchedules(image, maxErrors)
}
